package datastore

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"matproj/internal/document"
)

// Concurrency stress tests: the store simultaneously serves the workflow
// engine (claims + status updates), the builders (scans + rebuilds), and
// the web tier (reads) — §III-B's point is that one deployment carries
// all three. These tests hammer those paths together under -race.

func TestConcurrentMixedWorkload(t *testing.T) {
	s := MustOpenMemory()
	c := s.C("engines")
	const writers, readers, updaters, docsPerWriter = 4, 4, 2, 100
	c.EnsureIndex("state")

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsPerWriter; i++ {
				_, err := c.Insert(document.D{
					"_id":   fmt.Sprintf("w%d-%03d", w, i),
					"state": "ready",
					"n":     int64(i),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := c.FindAll(document.D{"state": "ready"}, &FindOpts{Limit: 10}); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Count(document.D{"n": document.D{"$gte": 50}}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for u := 0; u < updaters; u++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, err := c.UpdateMany(
					document.D{"n": int64(i % docsPerWriter)},
					document.D{"$inc": document.D{"touched": 1}})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	n, _ := c.Count(nil)
	if n != writers*docsPerWriter {
		t.Errorf("count = %d, want %d", n, writers*docsPerWriter)
	}
}

func TestConcurrentClaimsWithChurn(t *testing.T) {
	s := MustOpenMemory()
	c := s.C("engines")
	c.EnsureIndex("state")
	const jobs = 300
	for i := 0; i < jobs; i++ {
		c.Insert(document.D{"_id": fmt.Sprintf("j%04d", i), "state": "ready"})
	}
	var mu sync.Mutex
	claimed := map[string]bool{}
	var wg sync.WaitGroup
	// Claimers compete while a churner keeps adding load on the same
	// collection (profiling reads + unrelated inserts).
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Insert(document.D{"state": "done", "filler": int64(i)})
			c.FindAll(document.D{"state": "done"}, &FindOpts{Limit: 5})
			i++
		}
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				got, err := c.FindAndModify(
					document.D{"state": "ready"},
					document.D{"$set": document.D{"state": "running"}},
					nil, true)
				if errors.Is(err, ErrNotFound) {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				id := got["_id"].(string)
				mu.Lock()
				if claimed[id] {
					t.Errorf("double claim of %s", id)
				}
				claimed[id] = true
				mu.Unlock()
			}
		}()
	}
	// Wait for claimers only, then stop the churner.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Claimers exit when the queue drains; the churner needs the signal.
	for {
		mu.Lock()
		n := len(claimed)
		mu.Unlock()
		if n == jobs {
			break
		}
		select {
		case <-done:
		default:
		}
	}
	close(stop)
	<-done
	if len(claimed) != jobs {
		t.Errorf("claimed %d/%d", len(claimed), jobs)
	}
}

func TestConcurrentDurableWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := s.C("x")
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.Insert(document.D{"_id": fmt.Sprintf("d%d-%02d", w, i), "v": int64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n, _ := s2.C("x").Count(nil)
	if n != 300 {
		t.Errorf("replayed %d/300", n)
	}
}

func TestConcurrentIndexCreationAndQueries(t *testing.T) {
	s := MustOpenMemory()
	c := s.C("x")
	for i := 0; i < 500; i++ {
		c.Insert(document.D{"n": int64(i % 50), "tag": fmt.Sprintf("t%d", i%7)})
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.EnsureIndex("n")
			c.EnsureIndex("tag")
			for i := 0; i < 50; i++ {
				got, err := c.FindAll(document.D{"n": int64(i)}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if i < 50 && len(got) != 10 {
					t.Errorf("n=%d returned %d docs", i, len(got))
					return
				}
			}
		}()
	}
	wg.Wait()
}
