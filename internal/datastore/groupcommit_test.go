package datastore

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"matproj/internal/document"
	"matproj/internal/faults"
)

// Group-commit regression and chaos tests: the batched journal must ack
// exactly what a replay recovers, in the order it was applied, under
// racing writers and under injected append loss and torn tails.

// dumpAll snapshots every collection's documents keyed by id.
func dumpAll(t *testing.T, s *Store) map[string]map[string]document.D {
	t.Helper()
	out := map[string]map[string]document.D{}
	for _, name := range s.Collections() {
		docs, err := s.C(name).FindAll(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		m := map[string]document.D{}
		for _, d := range docs {
			m[d.GetString("_id")] = d
		}
		out[name] = m
	}
	return out
}

// TestReplayMatchesStateAfterRacingWriters is the regression test for
// the journal/apply order divergence: records used to be serialized to
// the journal outside the collection lock, so two racing updates to the
// same document could land in the file in the opposite order from how
// they were applied in memory — replay then resurrected the losing
// write. Records are now staged inside the collection's critical
// section, so whatever state the racing writers left behind is exactly
// the state a replay reconstructs.
func TestReplayMatchesStateAfterRacingWriters(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := s.C("mats")
	// Shared documents every writer fights over.
	const shared = 8
	for i := 0; i < shared; i++ {
		if _, err := c.Insert(document.D{"_id": fmt.Sprintf("shared-%d", i), "v": int64(0)}); err != nil {
			t.Fatal(err)
		}
	}
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := fmt.Sprintf("shared-%d", (w+i)%shared)
				c.UpdateOne(document.D{"_id": id},
					document.D{"$set": document.D{"v": int64(w*1000 + i), "by": fmt.Sprintf("w%d", w)}})
				if i%5 == 0 {
					c.Insert(document.D{"_id": fmt.Sprintf("own-%d-%d", w, i), "w": int64(w)})
				}
				if i%7 == 0 {
					c.RemoveID(fmt.Sprintf("own-%d-%d", w, i-i%7))
				}
			}
		}(w)
	}
	wg.Wait()
	want := dumpAll(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := dumpAll(t, s2)
	for name, docs := range want {
		for id, d := range docs {
			g, ok := got[name][id]
			if !ok {
				t.Fatalf("replay lost %s/%s", name, id)
			}
			if fmt.Sprint(g) != fmt.Sprint(d) {
				t.Errorf("replay diverged on %s/%s:\n  live   %v\n  replay %v", name, id, d, g)
			}
		}
		if len(got[name]) != len(docs) {
			t.Errorf("%s: %d docs after replay, want %d", name, len(got[name]), len(docs))
		}
	}
}

// TestReplayAdvancesIDCounter is the regression test for generated-id
// reuse after restart: replay used to rebuild documents without
// advancing the oid counter, so the first insert-without-id in a new
// process minted an id already owned by a replayed document. Any
// oid-form id entering the store — replayed, restored, or replicated —
// must push the counter past itself.
func TestReplayAdvancesIDCounter(t *testing.T) {
	dir := t.TempDir()
	// A journal holding an insert with a generated-form id far above
	// anything this process has minted (a fresh process replaying a
	// previous life's journal).
	const highID = "oid00ffff000000" // 0xffff000000 ≈ 1.1e12 ids
	line := fmt.Sprintf(`{"op":"i","c":"x","id":"%s","doc":{"_id":"%s","v":1}}`+"\n", highID, highID)
	if err := os.WriteFile(JournalFile(dir), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if cur := idCounter.Load(); cur < 0xffff000000 {
		t.Fatalf("idCounter %#x after replay, want >= %#x", cur, uint64(0xffff000000))
	}
	// The actual failure mode: a fresh insert-without-id must not
	// collide with the replayed document.
	id, err := s.C("x").Insert(document.D{"v": int64(2)})
	if err != nil {
		t.Fatalf("insert without id after replay: %v", err)
	}
	if id == highID {
		t.Fatalf("minted id %s collides with replayed document", id)
	}
	n, _ := s.C("x").Count(nil)
	if n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
}

// TestReplResetAdvancesIDCounter covers the same id-reuse hazard on the
// snapshot-install path: a follower re-seeded via ReplReset holds the
// leader's generated ids and must not mint duplicates afterwards.
func TestReplResetAdvancesIDCounter(t *testing.T) {
	src := MustOpenMemory()
	defer src.Close()
	src.EnableReplication(64)
	const highID = "oid00fffe000000"
	if _, err := src.C("x").Insert(document.D{"_id": highID, "v": int64(1)}); err != nil {
		t.Fatal(err)
	}
	lines, head, err := src.ReplSnapshotEntries()
	if err != nil {
		t.Fatal(err)
	}

	dst := MustOpenMemory()
	defer dst.Close()
	dst.EnableReplication(64)
	if err := dst.ReplReset(lines, head); err != nil {
		t.Fatal(err)
	}
	if cur := idCounter.Load(); cur < 0xfffe000000 {
		t.Fatalf("idCounter %#x after ReplReset, want >= %#x", cur, uint64(0xfffe000000))
	}
	id, err := dst.C("x").Insert(document.D{"v": int64(2)})
	if err != nil {
		t.Fatalf("insert after reset: %v", err)
	}
	if id == highID {
		t.Fatal("minted id collides with restored document")
	}
}

// TestTearTailChaosRecoversAckedPrefix tears a random chunk off the
// journal after a clean run: the reopened store must hold an exact
// contiguous prefix of the acked inserts — nothing reordered, nothing
// past the tear surviving, nothing before it lost.
func TestTearTailChaosRecoversAckedPrefix(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			const n = 40
			for i := 0; i < n; i++ {
				if _, err := s.C("x").Insert(document.D{"_id": fmt.Sprintf("d%03d", i), "v": int64(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			inj := faults.New(faults.Config{Seed: seed})
			if _, err := inj.TearTail(JournalFile(dir), 200); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen after tear: %v", err)
			}
			defer s2.Close()
			docs, err := s2.C("x").FindAll(nil, &FindOpts{Sort: []string{"v"}})
			if err != nil {
				t.Fatal(err)
			}
			// Exact contiguous prefix: doc i present iff i < len(docs).
			for i, d := range docs {
				if want := fmt.Sprintf("d%03d", i); d.GetString("_id") != want {
					t.Fatalf("recovered doc %d is %s, want %s (prefix broken)", i, d.GetString("_id"), want)
				}
			}
			if len(docs) < n-4 {
				// Journal lines here run ~65 bytes, so a 200-byte tear
				// can destroy at most four records.
				t.Fatalf("tear removed %d records, expected at most 4", n-len(docs))
			}
		})
	}
}

// TestDropAppendChaosLosesExactlyDroppedRecords runs an insert-only
// workload with silent append loss injected: every insert still acks
// (the loss models a lost page after the ack), and the replayed store
// must hold exactly the acked set minus the dropped records — the
// injector's own count, no more, no fewer.
func TestDropAppendChaosLosesExactlyDroppedRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(faults.Config{Seed: 42, DropAppendRate: 0.2})
	s.InjectJournalFaults(inj)
	const n = 100
	acked := map[string]bool{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("d%03d", i)
		if _, err := s.C("x").Insert(document.D{"_id": id, "v": int64(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		acked[id] = true
	}
	dropped := inj.Stats().DroppedAppends
	if dropped == 0 {
		t.Fatal("injector dropped nothing; the chaos run is vacuous")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	docs, err := s2.C("x").FindAll(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(docs), n-dropped; got != want {
		t.Errorf("recovered %d docs, want %d (%d acked - %d dropped)", got, want, n, dropped)
	}
	for _, d := range docs {
		if !acked[d.GetString("_id")] {
			t.Errorf("recovered unacked document %s", d.GetString("_id"))
		}
	}
}

// TestConcurrentBatchedWriteStress races InsertMany, BulkWrite, and
// UpdateMany against each other on a durable store — the race-detector
// workout for the group-commit queue — then replays and checks the
// survivor count is consistent.
func TestConcurrentBatchedWriteStress(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := s.C("x")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < 10; b++ {
				docs := make([]document.D, 5)
				for i := range docs {
					docs[i] = document.D{"_id": fmt.Sprintf("im-%d-%d-%d", w, b, i), "grp": int64(w)}
				}
				if _, err := c.InsertMany(docs); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < 10; b++ {
				ops := []BulkOp{
					{Op: BulkInsert, Doc: document.D{"_id": fmt.Sprintf("bw-%d-%d", w, b), "grp": int64(w + 100)}},
					{Op: BulkUpdateMany, Filter: document.D{"grp": int64(w)}, Update: document.D{"$set": document.D{"touched": true}}},
					{Op: BulkDelete, Filter: document.D{"_id": fmt.Sprintf("bw-%d-%d", w, b-1)}},
				}
				if _, err := c.BulkWrite(ops); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < 10; b++ {
				c.UpdateMany(document.D{"grp": int64(w + 100)}, document.D{"$inc": document.D{"n": int64(1)}})
			}
		}(w)
	}
	wg.Wait()
	want, err := c.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4 writers × 10 batches × 5 docs, plus one bw- survivor per bulk
	// writer (each round deletes the previous round's insert).
	if want != 4*10*5+4 {
		t.Fatalf("live count = %d, want %d", want, 4*10*5+4)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _ := s2.C("x").Count(nil)
	if got != want {
		t.Fatalf("replayed count = %d, want %d", got, want)
	}
}
