// Package datastore implements the document-oriented NoSQL store at the
// center of the Materials Project architecture (the role MongoDB plays in
// the paper). A Store holds named Collections of JSON-like documents and
// supports Mongo-style queries, atomic updates, find-and-modify (the
// primitive the workflow engine uses to claim jobs), secondary indexes
// (hash and ordered, multikey over arrays), cursors, distinct, a built-in
// single-threaded MapReduce (mimicking MongoDB's JavaScript engine), and
// optional durability via an append-only journal plus snapshots.
//
// The same deployment simultaneously serves as (a) workflow state manager,
// (b) analytics store, and (c) web back-end — the paper's first
// contribution.
package datastore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"matproj/internal/obs"
)

// Store is a database: a set of named collections. All methods are safe
// for concurrent use.
type Store struct {
	mu          sync.RWMutex
	collections map[string]*Collection
	profiler    *Profiler
	recovery    RecoveryStats

	// journal is nil for memory-only stores. It is an atomic pointer —
	// not guarded by s.mu — because mutators look it up while holding
	// their collection's write lock (records are staged under c.mu so
	// journal order matches apply order), and taking s.mu there would
	// close a lock cycle with Stats (s.mu → c.mu).
	journal atomic.Pointer[journal]

	// repl tracks replication generations (and, for memory stores with
	// replication enabled, a bounded ring of framed log entries). It has
	// its own mutex; see repl.go.
	repl replState

	// Live observability (nil when not wired): every profiled operation
	// also lands in the registry, and slow ops in the tracer's log.
	obsReg atomic.Pointer[obs.Registry]
	obsTr  atomic.Pointer[obs.Tracer]
}

// Open creates an in-memory store. If dir is non-empty, the store is
// durable: existing snapshot and journal files in dir are replayed on
// open (repairing a torn journal tail if the previous process crashed
// mid-write), and subsequent writes append to the journal. What replay
// found is available via Recovery.
func Open(dir string) (*Store, error) {
	s := &Store{
		collections: make(map[string]*Collection),
		profiler:    NewProfiler(4096),
	}
	if dir != "" {
		if err := openJournalDir(dir); err != nil {
			return nil, err
		}
		// Replay (and repair) before opening the append handle so the
		// handle's offset reflects any tail truncation.
		stats, err := replay(s, dir)
		if err != nil {
			return nil, err
		}
		j, err := openAppend(dir)
		if err != nil {
			return nil, err
		}
		// Durable stores always mint generations: the journal is the
		// replication log. Replay restored seq/base from the records
		// (and snapshot meta) already on disk.
		j.repl = &s.repl
		s.journal.Store(j)
		s.recovery = stats
	}
	return s, nil
}

// Recovery reports what replay found when this store was opened: how
// many records were loaded from snapshot and journal, and whether a
// torn journal tail was repaired. Zero-valued for memory-only stores.
func (s *Store) Recovery() RecoveryStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.recovery
}

// Observe wires the store's hot paths into a metrics registry and slow-op
// tracer (either may be nil). Per-collection operation counters, per-op
// latency histograms, journal append/fsync/snapshot timings, and the
// recovery stats from open all become visible. Safe to call while
// traffic is flowing.
func (s *Store) Observe(reg *obs.Registry, tr *obs.Tracer) {
	s.obsReg.Store(reg)
	s.obsTr.Store(tr)
	j := s.journal.Load()
	s.mu.RLock()
	rec := s.recovery
	s.mu.RUnlock()
	if j != nil {
		j.mu.Lock()
		j.obs = reg
		j.mu.Unlock()
	}
	if reg != nil {
		reg.Counter("datastore.recovery.snapshot_records").Add(uint64(rec.SnapshotRecords))
		reg.Counter("datastore.recovery.journal_records").Add(uint64(rec.JournalRecords))
		reg.Counter("datastore.recovery.dropped_records").Add(uint64(rec.DroppedRecords))
		reg.Counter("datastore.recovery.truncated_bytes").Add(uint64(rec.TruncatedBytes))
		if rec.Repaired {
			reg.Counter("datastore.recovery.repaired").Inc()
		}
	}
}

// metrics returns the wired registry and tracer (either may be nil).
func (s *Store) metrics() (*obs.Registry, *obs.Tracer) {
	return s.obsReg.Load(), s.obsTr.Load()
}

// InjectJournalFaults installs a fault injector on the journal append
// path (chaos testing). Passing nil removes it. No-op for memory-only
// stores.
func (s *Store) InjectJournalFaults(f JournalFaults) {
	j := s.journal.Load()
	if j == nil {
		return
	}
	j.mu.Lock()
	j.faults = f
	j.mu.Unlock()
}

// MustOpenMemory returns an in-memory store, panicking on the (impossible
// for memory stores) error path. For tests and examples.
func MustOpenMemory() *Store {
	s, err := Open("")
	if err != nil {
		panic(err)
	}
	return s
}

// Close flushes and closes the journal, if any. The journal pointer is
// detached atomically before closing; in-flight commits that already
// hold the old pointer resolve against the closed journal's terminal
// state (writeBatch on a detached journal fails their frames fast).
func (s *Store) Close() error {
	if j := s.journal.Swap(nil); j != nil {
		return j.close()
	}
	return nil
}

// C returns the named collection, creating it on first use (MongoDB
// semantics: collections appear implicitly).
func (s *Store) C(name string) *Collection {
	s.mu.RLock()
	c, ok := s.collections[name]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.collections[name]; ok {
		return c
	}
	c = newCollection(name, s)
	s.collections[name] = c
	return c
}

// Collections returns the names of all collections, sorted.
func (s *Store) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.collections))
	for n := range s.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DropCollection removes a collection and all its documents and indexes.
func (s *Store) DropCollection(name string) {
	s.mu.Lock()
	delete(s.collections, name)
	s.mu.Unlock()
	if j := s.journal.Load(); j != nil {
		j.logDrop(name)
		return
	}
	s.repl.record(name, journalDrop, "", nil)
}

// Profiler returns the store-wide query profiler (the source of the
// Fig. 5 latency data).
func (s *Store) Profiler() *Profiler { return s.profiler }

// Snapshot writes a full snapshot of every collection and truncates the
// journal. No-op for memory-only stores.
func (s *Store) Snapshot() error {
	j := s.journal.Load()
	if j == nil {
		return nil
	}
	return j.snapshot(s)
}

// Stats summarizes the whole store.
type StoreStats struct {
	Collections int
	Documents   int
	Bytes       int
}

// Stats reports document and byte counts over all collections.
func (s *Store) Stats() StoreStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st StoreStats
	st.Collections = len(s.collections)
	for _, c := range s.collections {
		cs := c.Stats()
		st.Documents += cs.Documents
		st.Bytes += cs.Bytes
	}
	return st
}

// Profiler records per-operation latencies in a bounded ring, exactly the
// data behind the paper's Fig. 5 histogram and time-series inset.
type Profiler struct {
	mu      sync.Mutex
	ring    []ProfileEntry
	next    int
	filled  bool
	total   uint64
	records uint64
}

// ProfileEntry is one profiled operation.
type ProfileEntry struct {
	Collection string
	Op         string // "find", "update", "insert", ...
	Duration   time.Duration
	Returned   int
	At         time.Time
}

// NewProfiler returns a profiler retaining the most recent n entries.
func NewProfiler(n int) *Profiler {
	if n <= 0 {
		n = 1
	}
	return &Profiler{ring: make([]ProfileEntry, n)}
}

// Record appends an entry to the ring.
func (p *Profiler) Record(e ProfileEntry) {
	p.mu.Lock()
	p.ring[p.next] = e
	p.next++
	if p.next == len(p.ring) {
		p.next = 0
		p.filled = true
	}
	p.total++
	p.records += uint64(e.Returned)
	p.mu.Unlock()
}

// Entries returns the retained entries, oldest first.
func (p *Profiler) Entries() []ProfileEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.filled {
		out := make([]ProfileEntry, p.next)
		copy(out, p.ring[:p.next])
		return out
	}
	out := make([]ProfileEntry, 0, len(p.ring))
	out = append(out, p.ring[p.next:]...)
	out = append(out, p.ring[:p.next]...)
	return out
}

// Totals reports the lifetime operation and returned-record counts,
// matching the paper's "3315 distinct queries returning a total of
// 12,951,099 records" style of accounting.
func (p *Profiler) Totals() (ops, records uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total, p.records
}

// ErrNotFound is returned by operations that require a matching document
// when none exists.
var ErrNotFound = fmt.Errorf("datastore: no matching document")

// ErrDuplicateID is returned when inserting a document whose _id already
// exists in the collection.
var ErrDuplicateID = fmt.Errorf("datastore: duplicate _id")
