package datastore

import (
	"fmt"
	"testing"
	"testing/quick"

	"matproj/internal/document"
)

// seedElements populates a collection with n docs cycling through element
// combinations and returns it.
func seedElements(tb testing.TB, n int) *Collection {
	tb.Helper()
	c := MustOpenMemory().C("mps")
	combos := [][]any{
		{"Li", "O"}, {"Li", "Fe", "O"}, {"Na", "O"}, {"Fe", "O"}, {"Li", "Co", "O"},
	}
	for i := 0; i < n; i++ {
		_, err := c.Insert(document.D{
			"_id":        fmt.Sprintf("m%06d", i),
			"elements":   combos[i%len(combos)],
			"nelectrons": int64(50 + i%300),
			"formula":    fmt.Sprintf("F%d", i),
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	return c
}

func TestIndexEqualityMatchesFullScan(t *testing.T) {
	c := seedElements(t, 500)
	filter := doc(`{"nelectrons": 120}`)
	scan, _ := c.FindAll(filter, nil)
	c.EnsureIndex("nelectrons")
	indexed, _ := c.FindAll(filter, nil)
	if len(scan) == 0 || len(scan) != len(indexed) {
		t.Fatalf("scan=%d indexed=%d", len(scan), len(indexed))
	}
	for i := range scan {
		if scan[i]["_id"] != indexed[i]["_id"] {
			t.Fatalf("order mismatch at %d", i)
		}
	}
}

func TestMultikeyIndexOnElements(t *testing.T) {
	c := seedElements(t, 500)
	filter := doc(`{"elements": {"$all": ["Li", "O"]}, "nelectrons": {"$lte": 200}}`)
	scan, _ := c.FindAll(filter, nil)
	c.EnsureIndex("elements")
	indexed, _ := c.FindAll(filter, nil)
	if len(scan) != len(indexed) {
		t.Fatalf("scan=%d indexed=%d", len(scan), len(indexed))
	}
	// Scalar equality against multikey index.
	li, _ := c.FindAll(doc(`{"elements": "Na"}`), nil)
	if len(li) != 100 {
		t.Errorf("Na count = %d, want 100", len(li))
	}
}

func TestRangeIndexMatchesFullScan(t *testing.T) {
	c := seedElements(t, 500)
	for _, f := range []string{
		`{"nelectrons": {"$gte": 100, "$lt": 150}}`,
		`{"nelectrons": {"$gt": 100, "$lte": 150}}`,
		`{"nelectrons": {"$lt": 75}}`,
		`{"nelectrons": {"$gte": 340}}`,
	} {
		filter := doc(f)
		scan, _ := c.FindAll(filter, nil)
		c.EnsureIndex("nelectrons")
		indexed, _ := c.FindAll(filter, nil)
		if len(scan) != len(indexed) {
			t.Errorf("%s: scan=%d indexed=%d", f, len(scan), len(indexed))
		}
		c.DropIndex("nelectrons")
	}
}

func TestIndexMaintainedAcrossRemove(t *testing.T) {
	c := seedElements(t, 100)
	c.EnsureIndex("elements")
	c.Remove(doc(`{"elements": "Na"}`))
	got, _ := c.FindAll(doc(`{"elements": "Na"}`), nil)
	if len(got) != 0 {
		t.Errorf("stale index after remove: %d", len(got))
	}
}

func TestEnsureIndexIdempotentAndIgnoresID(t *testing.T) {
	c := seedElements(t, 10)
	c.EnsureIndex("elements")
	c.EnsureIndex("elements")
	c.EnsureIndex("_id")
	c.EnsureIndex("")
	st := c.Stats()
	if len(st.Indexes) != 1 {
		t.Errorf("indexes = %v", st.Indexes)
	}
}

func TestIDFastPath(t *testing.T) {
	c := seedElements(t, 100)
	got, _ := c.FindAll(doc(`{"_id": "m000042"}`), nil)
	if len(got) != 1 || got[0]["formula"] != "F42" {
		t.Errorf("got %v", got)
	}
	none, _ := c.FindAll(doc(`{"_id": "missing"}`), nil)
	if len(none) != 0 {
		t.Error("missing id matched")
	}
	// _id equality with extra non-matching condition.
	none2, _ := c.FindAll(doc(`{"_id": "m000042", "formula": "WRONG"}`), nil)
	if len(none2) != 0 {
		t.Error("fast path ignored remaining filter")
	}
}

func TestIndexCrossNumericEquality(t *testing.T) {
	c := MustOpenMemory().C("x")
	c.Insert(document.D{"n": int64(3)})
	c.EnsureIndex("n")
	got, _ := c.FindAll(document.D{"n": 3.0}, nil)
	if len(got) != 1 {
		t.Errorf("3.0 lookup found %d", len(got))
	}
}

func TestIndexOnMissingFieldStillFindsOthers(t *testing.T) {
	c := MustOpenMemory().C("x")
	c.Insert(doc(`{"a": 1}`))
	c.Insert(doc(`{"b": 2}`))
	c.EnsureIndex("a")
	// Filter on an indexed field: index gives candidates; doc without the
	// field must not match.
	got, _ := c.FindAll(doc(`{"a": 1}`), nil)
	if len(got) != 1 {
		t.Errorf("got %d", len(got))
	}
	// Lookup of absent value returns empty candidate set, not full scan.
	none, _ := c.FindAll(doc(`{"a": 99}`), nil)
	if len(none) != 0 {
		t.Errorf("got %d", len(none))
	}
}

func TestQuickIndexedEqualsScan(t *testing.T) {
	f := func(vals []uint8, probe uint8) bool {
		ci := MustOpenMemory().C("i")
		cs := MustOpenMemory().C("s")
		for i, v := range vals {
			d := document.D{"_id": fmt.Sprintf("d%d", i), "v": int64(v % 8)}
			ci.Insert(d)
			cs.Insert(d)
		}
		ci.EnsureIndex("v")
		filter := document.D{"v": int64(probe % 8)}
		a, _ := ci.FindAll(filter, nil)
		b, _ := cs.FindAll(filter, nil)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i]["_id"] != b[i]["_id"] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRangeIndexedEqualsScan(t *testing.T) {
	f := func(vals []int16, lo, hi int16) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		ci := MustOpenMemory().C("i")
		cs := MustOpenMemory().C("s")
		for i, v := range vals {
			d := document.D{"_id": fmt.Sprintf("d%d", i), "v": int64(v)}
			ci.Insert(d)
			cs.Insert(d)
		}
		ci.EnsureIndex("v")
		filter := document.D{"v": document.D{"$gte": int64(lo), "$lte": int64(hi)}}
		a, _ := ci.FindAll(filter, nil)
		b, _ := cs.FindAll(filter, nil)
		return len(a) == len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Regression: int64 keys beyond float64's exact range (|x| > 2^53) used to
// be rendered through float64+%g, so distinct huge integers collapsed into
// one bucket and indexed equality lookups returned the wrong documents.
func TestIndexHugeInt64KeysStayDistinct(t *testing.T) {
	c := MustOpenMemory().C("big")
	// Both values round to the same float64, so the old canonicalKey gave
	// them identical bucket keys.
	a := int64(1<<53) + 1 // 9007199254740993, rounds to 9007199254740992
	b := int64(1 << 53)   // 9007199254740992 exactly
	if float64(a) != float64(b) {
		t.Fatalf("test premise broken: float64(%d) != float64(%d)", a, b)
	}
	c.Insert(document.D{"_id": "a", "v": a})
	c.Insert(document.D{"_id": "b", "v": b})
	c.EnsureIndex("v")

	for _, tc := range []struct {
		val  int64
		want string
	}{{a, "a"}, {b, "b"}} {
		docs, err := c.FindAll(document.D{"v": tc.val}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(docs) != 1 || docs[0]["_id"] != tc.want {
			t.Errorf("lookup %d: got %v, want only %q", tc.val, docs, tc.want)
		}
	}

	// The indexed plan must agree with an unindexed scan.
	s := MustOpenMemory().C("scan")
	s.Insert(document.D{"_id": "a", "v": a})
	s.Insert(document.D{"_id": "b", "v": b})
	for _, v := range []int64{a, b} {
		idx, _ := c.FindAll(document.D{"v": v}, nil)
		scn, _ := s.FindAll(document.D{"v": v}, nil)
		if len(idx) != len(scn) {
			t.Errorf("indexed=%d scanned=%d for %d", len(idx), len(scn), v)
		}
	}
}

// The 3 == 3.0 collapse survives the fix wherever the float is exact, and
// only there: fractional and astronomically large floats keep their own
// buckets.
func TestIndexNumericCollapseOnlyWhereExact(t *testing.T) {
	c := MustOpenMemory().C("mix")
	c.Insert(document.D{"_id": "int", "v": int64(3)})
	c.EnsureIndex("v")

	// float64 3.0 must find the int64 3 document through the index.
	docs, err := c.FindAll(document.D{"v": float64(3)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0]["_id"] != "int" {
		t.Errorf("3.0 lookup = %v, want the int64 3 doc", docs)
	}

	// A huge int64 and a nearby non-equal float do not collapse.
	c.Insert(document.D{"_id": "huge", "v": int64(1<<53) + 1})
	docs, _ = c.FindAll(document.D{"v": float64(1 << 53)}, nil)
	for _, d := range docs {
		if d["_id"] == "huge" {
			t.Errorf("float64(2^53) matched int64(2^53+1) through the index")
		}
	}

	// An integral float beyond 2^53 that IS exactly an int64 still
	// collapses with that int64 (1<<60 is exactly representable).
	c.Insert(document.D{"_id": "exact60", "v": int64(1 << 60)})
	docs, _ = c.FindAll(document.D{"v": float64(1 << 60)}, nil)
	if len(docs) != 1 || docs[0]["_id"] != "exact60" {
		t.Errorf("float64(2^60) lookup = %v, want the int64 2^60 doc", docs)
	}
}
