package datastore

import (
	"fmt"
	"os"
	"testing"

	"matproj/internal/document"
)

// Index-definition durability: ordered and hash index definitions are
// journal records ("x"/"X" ops), so they must survive replay, snapshot
// compaction, torn journal tails, and replication catch-up exactly like
// documents do.

func seedIndexedStore(t *testing.T, dir string) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.C("m").Insert(document.D{
			"_id": fmt.Sprintf("d%02d", i), "a": int64(i % 4), "b": int64(i), "s": string(rune('a' + i%3)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.C("m").EnsureOrderedIndex("a", "b")
	s.C("m").EnsureOrderedIndex("gone")
	s.C("m").DropOrderedIndex("gone")
	s.C("m").EnsureIndex("s")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// assertIndexedStore checks the index set and that the planner actually
// uses the recovered indexes (definition without backfill would plan
// right and answer wrong — FindAll re-verifies, so also compare counts).
func assertIndexedStore(t *testing.T, s *Store) {
	t.Helper()
	c := s.C("m")
	names := c.OrderedIndexes()
	if len(names) != 1 || names[0] != "a,b" {
		t.Fatalf("ordered indexes after recovery: %v, want [a,b]", names)
	}
	plan, err := c.Explain(document.D{"a": int64(2), "b": document.D{"$gte": int64(0)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan["mode"] != "index" || plan["index"] != "a,b" || plan["index_kind"] != "ordered" {
		t.Fatalf("recovered ordered index not planned: %v", plan)
	}
	docs, err := c.FindAll(document.D{"a": int64(2)}, &FindOpts{Sort: []string{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0].GetString("_id") != "d02" || docs[1].GetString("_id") != "d06" {
		t.Fatalf("indexed query after recovery: %v", docs)
	}
	plan, err = c.Explain(document.D{"s": "a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan["mode"] != "index" || plan["index_kind"] != "hash" {
		t.Fatalf("recovered hash index not planned: %v", plan)
	}
	if n, _ := c.Count(document.D{"s": "a"}); n != 3 {
		t.Fatalf("hash-indexed count after recovery: %d, want 3", n)
	}
}

func TestIndexDefsSurviveReplay(t *testing.T) {
	dir := t.TempDir()
	seedIndexedStore(t, dir)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	assertIndexedStore(t, s)
	// The recovered index must also be maintained, not just backfilled.
	if _, err := s.C("m").Insert(document.D{"_id": "d99", "a": int64(2), "b": int64(99)}); err != nil {
		t.Fatal(err)
	}
	docs, err := s.C("m").FindAll(document.D{"a": int64(2)}, &FindOpts{Sort: []string{"-b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 || docs[0].GetString("_id") != "d99" {
		t.Fatalf("insert after recovery missed the index: %v", docs)
	}
}

func TestIndexDefsSurviveSnapshot(t *testing.T) {
	dir := t.TempDir()
	seedIndexedStore(t, dir)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// A post-snapshot write replays on top of the snapshot's defs.
	if _, err := s.C("m").Insert(document.D{"_id": "d50", "a": int64(1), "b": int64(50)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	assertIndexedStore(t, s2)
	if n, _ := s2.C("m").Count(document.D{"a": int64(1)}); n != 3 {
		t.Fatalf("post-snapshot insert lost: count %d, want 3", n)
	}
}

func TestTornIndexCreateLeavesPriorIndexesIntact(t *testing.T) {
	dir := t.TempDir()
	seedIndexedStore(t, dir)
	// Make an index-create the journal's final record, then tear it.
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.C("m").EnsureOrderedIndex("b")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(JournalFile(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(JournalFile(dir), int64(len(data)-4)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after torn index record: %v", err)
	}
	defer s2.Close()
	if !s2.Recovery().Repaired {
		t.Fatalf("torn tail not reported: %+v", s2.Recovery())
	}
	// The torn create is gone; everything before it is intact.
	for _, name := range s2.C("m").OrderedIndexes() {
		if name == "b" {
			t.Fatal("torn index-create record survived replay")
		}
	}
	assertIndexedStore(t, s2)
}

func TestReplTailCarriesIndexDefs(t *testing.T) {
	srcDir := t.TempDir()
	seedIndexedStore(t, srcDir)
	src, err := Open(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	lines, head, err := src.ReplTail(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	applied, gen, torn, err := dst.ApplyReplEntries(lines)
	if err != nil || torn {
		t.Fatalf("apply: applied=%d err=%v torn=%v", applied, err, torn)
	}
	if gen != head {
		t.Fatalf("follower gen %d, want %d", gen, head)
	}
	assertIndexedStore(t, dst)
}

func TestReplSnapshotCarriesIndexDefs(t *testing.T) {
	srcDir := t.TempDir()
	seedIndexedStore(t, srcDir)
	src, err := Open(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	snap, head, err := src.ReplSnapshotEntries()
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	dst.C("stale").EnsureOrderedIndex("junk") // must be wiped by reset
	if err := dst.ReplReset(snap, head); err != nil {
		t.Fatal(err)
	}
	if n := dst.C("stale").OrderedIndexes(); len(n) != 0 {
		t.Fatalf("stale indexes survived reset: %v", n)
	}
	assertIndexedStore(t, dst)
}
