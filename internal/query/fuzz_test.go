package query

import (
	"testing"

	"matproj/internal/document"
)

// FuzzFilterCompileMatch throws arbitrary filter/document pairs at the
// compile-and-match path. Invalid JSON and rejected filters are fine; the
// invariants are that nothing panics, that a compiled filter is a pure
// function of its input document, and that recompiling the same filter
// yields the same verdict (Compile must not consume its argument).
func FuzzFilterCompileMatch(f *testing.F) {
	seeds := [][2]string{
		{`{"a": 1}`, `{"a": 1}`},
		{`{"elements": {"$all": ["Li", "O"]}}`, `{"elements": ["Li", "O", "Fe"]}`},
		{`{"nelectrons": {"$lte": 200, "$gte": 10}}`, `{"nelectrons": 120}`},
		{`{"$or": [{"a": 1}, {"b": {"$in": [1, 2]}}]}`, `{"b": 2}`},
		{`{"$and": [{"a": {"$exists": true}}, {"a": {"$ne": null}}]}`, `{"a": 0}`},
		{`{"a.b.c": {"$exists": true}}`, `{"a": {"b": {"c": null}}}`},
		{`{"name": {"$regex": "^Li"}}`, `{"name": "LiFePO4"}`},
		{`{"a": {"$not": {"$gt": 3}}}`, `{"a": [1, 2, 5]}`},
		{`{"x": {"$ne": "y"}}`, `{}`},
		{`{"a": {"$size": 2}}`, `{"a": [null, {"b": []}]}`},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, filterJSON, docJSON string) {
		fd, err := document.FromJSON([]byte(filterJSON))
		if err != nil {
			t.Skip()
		}
		doc, err := document.FromJSON([]byte(docJSON))
		if err != nil {
			t.Skip()
		}
		flt, err := Compile(fd)
		if err != nil {
			return // rejection is allowed; panicking is not
		}
		got := flt.Matches(doc)
		if again := flt.Matches(doc); again != got {
			t.Fatalf("Matches not deterministic for filter %s doc %s: %v then %v",
				filterJSON, docJSON, got, again)
		}
		flt2, err := Compile(fd)
		if err != nil {
			t.Fatalf("filter %s compiled once but not twice: %v", filterJSON, err)
		}
		if flt2.Matches(doc) != got {
			t.Fatalf("recompiled filter %s disagrees on doc %s", filterJSON, docJSON)
		}
	})
}

// FuzzUpdateApply drives the update compiler and applier with arbitrary
// operator documents. Compile/apply errors are acceptable outcomes; the
// invariants are no panics, deterministic application to identical
// copies, and a result that still serializes as JSON.
func FuzzUpdateApply(f *testing.F) {
	seeds := [][2]string{
		{`{"$set": {"a.b": 5}}`, `{"a": {"b": 1}}`},
		{`{"$unset": {"a": 1}}`, `{"a": 1, "b": 2}`},
		{`{"$inc": {"n": 2}, "$mul": {"m": 3}}`, `{"n": 1, "m": 4}`},
		{`{"$min": {"x": 1}, "$max": {"y": 9}}`, `{"x": 5, "y": 5}`},
		{`{"$push": {"tags": "new"}}`, `{"tags": ["old"]}`},
		{`{"$addToSet": {"tags": "old"}}`, `{"tags": ["old"]}`},
		{`{"$pull": {"tags": "old"}}`, `{"tags": ["old", "new"]}`},
		{`{"$pop": {"tags": 1}}`, `{"tags": [1, 2, 3]}`},
		{`{"$rename": {"a": "b"}}`, `{"a": 7}`},
		{`{"state": "ready", "priority": 3}`, `{"_id": "fw-1", "state": "waiting"}`},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, updateJSON, docJSON string) {
		ud, err := document.FromJSON([]byte(updateJSON))
		if err != nil {
			t.Skip()
		}
		doc, err := document.FromJSON([]byte(docJSON))
		if err != nil {
			t.Skip()
		}
		upd, err := CompileUpdate(ud)
		if err != nil {
			return
		}
		out, err := upd.Apply(doc.Copy())
		if err != nil {
			return // runtime rejection (e.g. $inc on a string) is allowed
		}
		out2, err := upd.Apply(doc.Copy())
		if err != nil {
			t.Fatalf("update %s applied once but not twice to %s: %v", updateJSON, docJSON, err)
		}
		if !document.Equal(out, out2) {
			t.Fatalf("update %s not deterministic on %s:\n%v\n%v", updateJSON, docJSON, out, out2)
		}
		if _, err := out.ToJSON(); err != nil {
			t.Fatalf("update %s on %s produced unserializable document: %v", updateJSON, docJSON, err)
		}
	})
}
