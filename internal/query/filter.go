// Package query implements the MongoDB-style query language used by the
// datastore: filter documents with comparison, array, logical, and element
// operators; atomic update documents ($set, $inc, $push, ...); field
// projections; and multi-key sorts.
//
// The paper quotes the operator surface directly — e.g. selecting jobs
// "for crystals containing both lithium and oxygen atoms with less than
// 200 electrons" via
//
//	{elements: {$all: ['Li','O']}, nelectrons: {$lte: 200}}
//
// and Fuse parameter overrides expressed "similar to Mongo atomic update
// syntax (e.g. $set, $unset, etc.)". This package provides exactly that
// surface.
package query

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"matproj/internal/document"
)

// Filter is a compiled query filter. Compile once, match many times.
type Filter struct {
	root matcher
	// fields lists the top-level dotted field paths that participate in
	// equality or range constraints, used for index selection.
	fields []fieldConstraint
}

// ConstraintKind classifies how a filter constrains a field, for the
// benefit of index selection in the datastore.
type ConstraintKind int

const (
	// ConstraintEquality means the filter pins the field to one value.
	ConstraintEquality ConstraintKind = iota
	// ConstraintRange means the filter bounds the field ($lt/$lte/$gt/$gte).
	ConstraintRange
	// ConstraintContains means the field (an array) must contain a value
	// ($all members, $in single-element).
	ConstraintContains
	// ConstraintIn means the field's value must equal one of a list of
	// values ($in), usable as a set of point lookups by ordered indexes.
	ConstraintIn
)

// fieldConstraint records one index-usable constraint.
type fieldConstraint struct {
	Path  string
	Kind  ConstraintKind
	Value any // equality or contains value; nil for pure ranges
	// Range bounds; nil pointer means unbounded on that side.
	Min, Max         any
	MinOpen, MaxOpen bool // true when the bound is exclusive
	hasMin, hasMax   bool
	// Values holds the $in membership list (ConstraintIn only).
	Values []any
}

// matcher is the compiled form of one predicate.
type matcher interface {
	matches(doc document.D) bool
}

// Compile validates and compiles a filter document. An empty or nil filter
// matches every document.
func Compile(f document.D) (*Filter, error) {
	f = document.NormalizeDoc(f)
	root, constraints, err := compileClause(map[string]any(f))
	if err != nil {
		return nil, err
	}
	return &Filter{root: root, fields: constraints}, nil
}

// MustCompile is Compile that panics on error; for fixed filters in tests
// and examples.
func MustCompile(f document.D) *Filter {
	c, err := Compile(f)
	if err != nil {
		panic(err)
	}
	return c
}

// Matches reports whether doc satisfies the filter.
func (f *Filter) Matches(doc document.D) bool {
	if f == nil || f.root == nil {
		return true
	}
	return f.root.matches(doc)
}

// EqualityFields returns the dotted paths constrained to a single value,
// with that value. Used for index lookups.
func (f *Filter) EqualityFields() map[string]any {
	out := make(map[string]any)
	for _, c := range f.fields {
		if c.Kind == ConstraintEquality {
			out[c.Path] = c.Value
		}
	}
	return out
}

// ContainsFields returns dotted paths that must contain given values
// (from $all), one entry per required value.
func (f *Filter) ContainsFields() []struct {
	Path  string
	Value any
} {
	var out []struct {
		Path  string
		Value any
	}
	for _, c := range f.fields {
		if c.Kind == ConstraintContains {
			out = append(out, struct {
				Path  string
				Value any
			}{c.Path, c.Value})
		}
	}
	return out
}

// InConstraint describes a $in membership constraint: the field must
// equal one of Values. Usable by ordered indexes as point lookups.
type InConstraint struct {
	Path   string
	Values []any
}

// InFields returns dotted paths constrained by $in membership lists.
func (f *Filter) InFields() []InConstraint {
	var out []InConstraint
	for _, c := range f.fields {
		if c.Kind == ConstraintIn {
			out = append(out, InConstraint{Path: c.Path, Values: c.Values})
		}
	}
	return out
}

// RangeFields returns dotted paths constrained by comparison bounds.
func (f *Filter) RangeFields() []RangeConstraint {
	var out []RangeConstraint
	for _, c := range f.fields {
		if c.Kind == ConstraintRange {
			out = append(out, RangeConstraint{
				Path: c.Path,
				Min:  c.Min, Max: c.Max,
				MinOpen: c.MinOpen, MaxOpen: c.MaxOpen,
				HasMin: c.hasMin, HasMax: c.hasMax,
			})
		}
	}
	return out
}

// RangeConstraint describes a bound on one field usable by ordered indexes.
type RangeConstraint struct {
	Path             string
	Min, Max         any
	MinOpen, MaxOpen bool
	HasMin, HasMax   bool
}

// allMatcher combines sub-matchers conjunctively.
type allMatcher struct{ subs []matcher }

func (m allMatcher) matches(d document.D) bool {
	for _, s := range m.subs {
		if !s.matches(d) {
			return false
		}
	}
	return true
}

type anyMatcher struct{ subs []matcher }

func (m anyMatcher) matches(d document.D) bool {
	for _, s := range m.subs {
		if s.matches(d) {
			return true
		}
	}
	return false
}

type notMatcher struct{ sub matcher }

func (m notMatcher) matches(d document.D) bool { return !m.sub.matches(d) }

// fieldMatcher applies a value predicate at a dotted path with MongoDB
// array semantics: if the resolved value is an array and the predicate is
// not itself array-aware, the predicate matches if any element matches or
// if the array as a whole matches.
type fieldMatcher struct {
	path string
	pred valuePred
}

// valuePred tests a resolved field value. exists reports whether the path
// resolved at all.
type valuePred interface {
	test(v any, exists bool) bool
	// arrayAware predicates receive arrays whole ($all, $size, $elemMatch).
	arrayAware() bool
}

func (m fieldMatcher) matches(d document.D) bool {
	v, ok := d.Get(m.path)
	if m.pred.arrayAware() {
		return m.pred.test(v, ok)
	}
	if arr, isArr := v.([]any); isArr && ok {
		// Whole-array match first (e.g. {tags: ["a","b"]} equality), then
		// per-element.
		if m.pred.test(arr, true) {
			return true
		}
		for _, el := range arr {
			if m.pred.test(el, true) {
				return true
			}
		}
		return false
	}
	return m.pred.test(v, ok)
}

// compileClause compiles a map of field -> condition plus logical
// operators into a conjunction.
func compileClause(clause map[string]any) (matcher, []fieldConstraint, error) {
	var subs []matcher
	var constraints []fieldConstraint
	// Deterministic compile order for reproducible error messages.
	keys := make([]string, 0, len(clause))
	for k := range clause {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		val := clause[key]
		switch key {
		case "$and", "$or", "$nor":
			arr, ok := val.([]any)
			if !ok || len(arr) == 0 {
				return nil, nil, fmt.Errorf("query: %s requires a non-empty array", key)
			}
			var inner []matcher
			for i, el := range arr {
				m, ok := el.(map[string]any)
				if !ok {
					return nil, nil, fmt.Errorf("query: %s[%d] must be a document", key, i)
				}
				sub, subCons, err := compileClause(m)
				if err != nil {
					return nil, nil, err
				}
				inner = append(inner, sub)
				if key == "$and" {
					constraints = append(constraints, subCons...)
				}
			}
			switch key {
			case "$and":
				subs = append(subs, allMatcher{inner})
			case "$or":
				subs = append(subs, anyMatcher{inner})
			case "$nor":
				subs = append(subs, notMatcher{anyMatcher{inner}})
			}
		case "$not":
			return nil, nil, fmt.Errorf("query: $not is only valid inside a field condition")
		default:
			if strings.HasPrefix(key, "$") {
				return nil, nil, fmt.Errorf("query: unknown top-level operator %q", key)
			}
			pred, cons, err := compileCondition(key, val)
			if err != nil {
				return nil, nil, err
			}
			subs = append(subs, fieldMatcher{path: key, pred: pred})
			constraints = append(constraints, cons...)
		}
	}
	if len(subs) == 1 {
		return subs[0], constraints, nil
	}
	return allMatcher{subs}, constraints, nil
}

// compileCondition compiles the condition for one field: either a literal
// (implicit $eq) or an operator document {$gte: 3, $lt: 10}.
func compileCondition(path string, cond any) (valuePred, []fieldConstraint, error) {
	opDoc, isOps := cond.(map[string]any)
	if isOps && hasOperatorKey(opDoc) {
		return compileOperators(path, opDoc)
	}
	// Literal equality (documents without $-keys compare structurally).
	c := fieldConstraint{Path: path, Kind: ConstraintEquality, Value: cond}
	return eqPred{cond}, []fieldConstraint{c}, nil
}

func hasOperatorKey(m map[string]any) bool {
	for k := range m {
		if strings.HasPrefix(k, "$") {
			return true
		}
	}
	return false
}

func compileOperators(path string, ops map[string]any) (valuePred, []fieldConstraint, error) {
	var preds []valuePred
	var constraints []fieldConstraint
	rangeCon := fieldConstraint{Path: path, Kind: ConstraintRange}
	keys := make([]string, 0, len(ops))
	for k := range ops {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, op := range keys {
		arg := ops[op]
		switch op {
		case "$eq":
			preds = append(preds, eqPred{arg})
			constraints = append(constraints, fieldConstraint{Path: path, Kind: ConstraintEquality, Value: arg})
		case "$ne":
			preds = append(preds, nePred{arg})
		case "$gt", "$gte", "$lt", "$lte":
			preds = append(preds, cmpPred{op: op, arg: arg})
			switch op {
			case "$gt":
				rangeCon.Min, rangeCon.MinOpen, rangeCon.hasMin = arg, true, true
			case "$gte":
				rangeCon.Min, rangeCon.MinOpen, rangeCon.hasMin = arg, false, true
			case "$lt":
				rangeCon.Max, rangeCon.MaxOpen, rangeCon.hasMax = arg, true, true
			case "$lte":
				rangeCon.Max, rangeCon.MaxOpen, rangeCon.hasMax = arg, false, true
			}
		case "$in", "$nin":
			arr, ok := arg.([]any)
			if !ok {
				return nil, nil, fmt.Errorf("query: %s requires an array (field %q)", op, path)
			}
			if op == "$in" {
				preds = append(preds, inPred{arr})
				constraints = append(constraints, fieldConstraint{Path: path, Kind: ConstraintIn, Values: arr})
			} else {
				preds = append(preds, notPred{inPred{arr}})
			}
		case "$all":
			arr, ok := arg.([]any)
			if !ok {
				return nil, nil, fmt.Errorf("query: $all requires an array (field %q)", path)
			}
			preds = append(preds, allPred{arr})
			for _, v := range arr {
				constraints = append(constraints, fieldConstraint{Path: path, Kind: ConstraintContains, Value: v})
			}
		case "$exists":
			want, ok := arg.(bool)
			if !ok {
				return nil, nil, fmt.Errorf("query: $exists requires a boolean (field %q)", path)
			}
			preds = append(preds, existsPred{want})
		case "$size":
			n, ok := arg.(int64)
			if !ok {
				return nil, nil, fmt.Errorf("query: $size requires an integer (field %q)", path)
			}
			preds = append(preds, sizePred{int(n)})
		case "$elemMatch":
			sub, ok := arg.(map[string]any)
			if !ok {
				return nil, nil, fmt.Errorf("query: $elemMatch requires a document (field %q)", path)
			}
			// $elemMatch supports two forms: a clause over document
			// elements ({state: "done"}) or a bare operator document
			// applied to scalar elements ({$gt: 5}).
			var inner matcher
			var scalarPred valuePred
			if hasOperatorKey(sub) {
				p, _, err := compileOperators(path, sub)
				if err != nil {
					return nil, nil, err
				}
				scalarPred = p
			} else {
				m, _, err := compileClause(sub)
				if err != nil {
					return nil, nil, err
				}
				inner = m
			}
			preds = append(preds, elemMatchPred{inner: inner, scalar: scalarPred})
		case "$regex":
			pat, ok := arg.(string)
			if !ok {
				return nil, nil, fmt.Errorf("query: $regex requires a string pattern (field %q)", path)
			}
			if opts, ok := ops["$options"].(string); ok && strings.Contains(opts, "i") {
				pat = "(?i)" + pat
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, nil, fmt.Errorf("query: $regex %q: %w", pat, err)
			}
			preds = append(preds, regexPred{re})
		case "$options":
			// consumed with $regex
		case "$mod":
			arr, ok := arg.([]any)
			if !ok || len(arr) != 2 {
				return nil, nil, fmt.Errorf("query: $mod requires [divisor, remainder] (field %q)", path)
			}
			div, okD := arr[0].(int64)
			rem, okR := arr[1].(int64)
			if !okD || !okR || div == 0 {
				return nil, nil, fmt.Errorf("query: $mod requires non-zero integer divisor (field %q)", path)
			}
			preds = append(preds, modPred{div, rem})
		case "$type":
			name, ok := arg.(string)
			if !ok {
				return nil, nil, fmt.Errorf("query: $type requires a type name string (field %q)", path)
			}
			preds = append(preds, typePred{name})
		case "$not":
			sub, ok := arg.(map[string]any)
			if !ok {
				return nil, nil, fmt.Errorf("query: $not requires an operator document (field %q)", path)
			}
			inner, _, err := compileOperators(path, sub)
			if err != nil {
				return nil, nil, err
			}
			preds = append(preds, notPred{inner})
		default:
			return nil, nil, fmt.Errorf("query: unknown operator %q (field %q)", op, path)
		}
	}
	if rangeCon.hasMin || rangeCon.hasMax {
		constraints = append(constraints, rangeCon)
	}
	if len(preds) == 1 {
		return preds[0], constraints, nil
	}
	return andPred{preds}, constraints, nil
}

// --- value predicates ---

type eqPred struct{ want any }

func (p eqPred) test(v any, exists bool) bool {
	if !exists {
		// Mongo: {a: null} matches missing fields too.
		return p.want == nil
	}
	return document.Equal(v, p.want)
}
func (p eqPred) arrayAware() bool { return false }

type nePred struct{ want any }

func (p nePred) test(v any, exists bool) bool {
	if !exists {
		return p.want != nil
	}
	if arr, ok := v.([]any); ok {
		if document.Equal(arr, p.want) {
			return false
		}
		for _, el := range arr {
			if document.Equal(el, p.want) {
				return false
			}
		}
		return true
	}
	return !document.Equal(v, p.want)
}
func (p nePred) arrayAware() bool { return true }

type cmpPred struct {
	op  string
	arg any
}

func (p cmpPred) test(v any, exists bool) bool {
	if !exists {
		return false
	}
	// Comparisons only apply within the same type class.
	if document.Compare(v, p.arg) != 0 && typeClass(v) != typeClass(p.arg) {
		return false
	}
	c := document.Compare(v, p.arg)
	switch p.op {
	case "$gt":
		return c > 0
	case "$gte":
		return c >= 0
	case "$lt":
		return c < 0
	case "$lte":
		return c <= 0
	}
	return false
}
func (p cmpPred) arrayAware() bool { return false }

func typeClass(v any) int {
	switch v.(type) {
	case int64, float64:
		return 1
	case string:
		return 2
	case bool:
		return 3
	case nil:
		return 0
	case []any:
		return 4
	default:
		return 5
	}
}

type inPred struct{ set []any }

func (p inPred) test(v any, exists bool) bool {
	if !exists {
		for _, w := range p.set {
			if w == nil {
				return true
			}
		}
		return false
	}
	for _, w := range p.set {
		if document.Equal(v, w) {
			return true
		}
	}
	return false
}
func (p inPred) arrayAware() bool { return false }

// allPred: array field contains every listed value (scalar field matches a
// single-element $all).
type allPred struct{ want []any }

func (p allPred) test(v any, exists bool) bool {
	if !exists {
		return false
	}
	arr, isArr := v.([]any)
	if !isArr {
		arr = []any{v}
	}
	for _, w := range p.want {
		found := false
		for _, el := range arr {
			if document.Equal(el, w) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
func (p allPred) arrayAware() bool { return true }

type existsPred struct{ want bool }

func (p existsPred) test(_ any, exists bool) bool { return exists == p.want }
func (p existsPred) arrayAware() bool             { return true }

type sizePred struct{ n int }

func (p sizePred) test(v any, exists bool) bool {
	arr, ok := v.([]any)
	return exists && ok && len(arr) == p.n
}
func (p sizePred) arrayAware() bool { return true }

type elemMatchPred struct {
	inner  matcher
	scalar valuePred
}

func (p elemMatchPred) test(v any, exists bool) bool {
	arr, ok := v.([]any)
	if !exists || !ok {
		return false
	}
	for _, el := range arr {
		if p.scalar != nil {
			if p.scalar.test(el, true) {
				return true
			}
			continue
		}
		if m, isDoc := el.(map[string]any); isDoc && p.inner.matches(document.D(m)) {
			return true
		}
	}
	return false
}
func (p elemMatchPred) arrayAware() bool { return true }

type regexPred struct{ re *regexp.Regexp }

func (p regexPred) test(v any, exists bool) bool {
	s, ok := v.(string)
	return exists && ok && p.re.MatchString(s)
}
func (p regexPred) arrayAware() bool { return false }

type modPred struct{ div, rem int64 }

func (p modPred) test(v any, exists bool) bool {
	if !exists {
		return false
	}
	f, ok := document.AsFloat(v)
	if !ok {
		return false
	}
	return int64(f)%p.div == p.rem
}
func (p modPred) arrayAware() bool { return false }

type typePred struct{ name string }

func (p typePred) test(v any, exists bool) bool {
	if !exists {
		return false
	}
	switch p.name {
	case "string":
		_, ok := v.(string)
		return ok
	case "int", "long":
		_, ok := v.(int64)
		return ok
	case "double":
		_, ok := v.(float64)
		return ok
	case "number":
		_, ok := document.AsFloat(v)
		return ok
	case "bool":
		_, ok := v.(bool)
		return ok
	case "object":
		_, ok := v.(map[string]any)
		return ok
	case "array":
		_, ok := v.([]any)
		return ok
	case "null":
		return v == nil
	}
	return false
}
func (p typePred) arrayAware() bool { return true }

type notPred struct{ inner valuePred }

func (p notPred) test(v any, exists bool) bool { return !p.inner.test(v, exists) }
func (p notPred) arrayAware() bool             { return p.inner.arrayAware() }

type andPred struct{ preds []valuePred }

func (p andPred) test(v any, exists bool) bool {
	for _, q := range p.preds {
		if q.arrayAware() {
			if !q.test(v, exists) {
				return false
			}
			continue
		}
		if arr, ok := v.([]any); ok && exists {
			matched := q.test(arr, true)
			if !matched {
				for _, el := range arr {
					if q.test(el, true) {
						matched = true
						break
					}
				}
			}
			if !matched {
				return false
			}
			continue
		}
		if !q.test(v, exists) {
			return false
		}
	}
	return true
}
func (p andPred) arrayAware() bool { return true }
