package query

import (
	"testing"

	"matproj/internal/document"
)

func TestProjectionNilReturnsCopy(t *testing.T) {
	var p *Projection
	d := doc(`{"a": {"b": 1}}`)
	out := p.Apply(d)
	if !document.Equal(out, d) {
		t.Error("nil projection should return equal copy")
	}
	out.Set("a.b", 99)
	if v, _ := d.Get("a.b"); v != int64(1) {
		t.Error("nil projection aliased input")
	}
}

func TestProjectionInclude(t *testing.T) {
	p := MustCompileProjection(doc(`{"formula": 1, "output.energy": 1}`))
	d := doc(`{"_id": "m-1", "formula": "Fe2O3", "output": {"energy": -8.1, "big": [1,2,3]}, "other": true}`)
	out := p.Apply(d)
	if out["_id"] != "m-1" {
		t.Error("_id should be kept by default")
	}
	if out["formula"] != "Fe2O3" {
		t.Errorf("formula = %v", out["formula"])
	}
	if v, _ := out.Get("output.energy"); v != -8.1 {
		t.Errorf("output.energy = %v", v)
	}
	if out.Has("output.big") || out.Has("other") {
		t.Error("unrequested fields present")
	}
}

func TestProjectionIncludeDropID(t *testing.T) {
	p := MustCompileProjection(doc(`{"formula": 1, "_id": 0}`))
	out := p.Apply(doc(`{"_id": 1, "formula": "X"}`))
	if out.Has("_id") {
		t.Error("_id kept despite _id:0")
	}
}

func TestProjectionExclude(t *testing.T) {
	p := MustCompileProjection(doc(`{"secret": 0, "nested.private": 0}`))
	d := doc(`{"_id": 1, "secret": "x", "nested": {"private": 1, "public": 2}, "keep": 3}`)
	out := p.Apply(d)
	if out.Has("secret") || out.Has("nested.private") {
		t.Error("excluded fields present")
	}
	if !out.Has("keep") || !out.Has("nested.public") || !out.Has("_id") {
		t.Error("unrelated fields dropped")
	}
	if !d.Has("secret") {
		t.Error("projection mutated input")
	}
}

func TestProjectionOnlyIDExclusion(t *testing.T) {
	p := MustCompileProjection(doc(`{"_id": 0}`))
	out := p.Apply(doc(`{"_id": 1, "a": 2}`))
	if out.Has("_id") || !out.Has("a") {
		t.Errorf("out = %v", out)
	}
}

func TestProjectionMixErrors(t *testing.T) {
	if _, err := CompileProjection(doc(`{"a": 1, "b": 0}`)); err == nil {
		t.Error("mixed projection: want error")
	}
	if _, err := CompileProjection(doc(`{"a": "yes"}`)); err == nil {
		t.Error("non-flag projection value: want error")
	}
	if p, err := CompileProjection(nil); err != nil || p != nil {
		t.Error("empty projection should compile to nil")
	}
	// Boolean and numeric flags accepted.
	if _, err := CompileProjection(document.D{"a": true, "b": 1.0}); err != nil {
		t.Errorf("bool/float flags: %v", err)
	}
}

func TestParseSort(t *testing.T) {
	keys, err := ParseSort([]string{"energy", "-priority"})
	if err != nil {
		t.Fatal(err)
	}
	if keys[0].Path != "energy" || keys[0].Desc {
		t.Errorf("keys[0] = %+v", keys[0])
	}
	if keys[1].Path != "priority" || !keys[1].Desc {
		t.Errorf("keys[1] = %+v", keys[1])
	}
	if _, err := ParseSort([]string{""}); err == nil {
		t.Error("empty sort field: want error")
	}
	if _, err := ParseSort([]string{"-"}); err == nil {
		t.Error("bare dash: want error")
	}
}

func TestSortDocs(t *testing.T) {
	docs := []document.D{
		doc(`{"n": 3, "s": "a"}`),
		doc(`{"n": 1, "s": "c"}`),
		doc(`{"n": 3, "s": "b"}`),
		doc(`{"s": "missing-n"}`),
	}
	keys, _ := ParseSort([]string{"n", "-s"})
	SortDocs(docs, keys)
	// Missing n sorts first (null < numbers), then n asc, s desc within n.
	if docs[0]["s"] != "missing-n" {
		t.Errorf("docs[0] = %v", docs[0])
	}
	if docs[1]["n"] != int64(1) {
		t.Errorf("docs[1] = %v", docs[1])
	}
	if docs[2]["s"] != "b" || docs[3]["s"] != "a" {
		t.Errorf("desc tiebreak wrong: %v, %v", docs[2], docs[3])
	}
	// No keys: no reorder.
	before := docs[0]
	SortDocs(docs, nil)
	if !document.Equal(docs[0], before) {
		t.Error("nil-key sort reordered")
	}
}

func TestCompareByKeysStable(t *testing.T) {
	a := doc(`{"x": 1}`)
	b := doc(`{"x": 1}`)
	keys, _ := ParseSort([]string{"x"})
	if CompareByKeys(a, b, keys) != 0 {
		t.Error("equal docs should compare 0")
	}
}
