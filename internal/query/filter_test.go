package query

import (
	"testing"
	"testing/quick"

	"matproj/internal/document"
)

func doc(s string) document.D { return document.MustFromJSON(s) }

// matchJSON compiles filter f and reports whether it matches document d.
func matchJSON(t *testing.T, f, d string) bool {
	t.Helper()
	flt, err := Compile(doc(f))
	if err != nil {
		t.Fatalf("Compile(%s): %v", f, err)
	}
	return flt.Matches(doc(d))
}

func TestEmptyFilterMatchesAll(t *testing.T) {
	if !matchJSON(t, `{}`, `{"a": 1}`) {
		t.Error("empty filter should match")
	}
	var nilFilter *Filter
	if !nilFilter.Matches(doc(`{"a":1}`)) {
		t.Error("nil filter should match")
	}
}

func TestImplicitEquality(t *testing.T) {
	cases := []struct {
		f, d string
		want bool
	}{
		{`{"a": 1}`, `{"a": 1}`, true},
		{`{"a": 1}`, `{"a": 1.0}`, true},
		{`{"a": 1}`, `{"a": 2}`, false},
		{`{"a": "x"}`, `{"a": "x"}`, true},
		{`{"a": null}`, `{"b": 1}`, true}, // null matches missing
		{`{"a": null}`, `{"a": null}`, true},
		{`{"a": null}`, `{"a": 1}`, false},
		{`{"a.b": 3}`, `{"a": {"b": 3}}`, true},
		{`{"a": {"b": 3}}`, `{"a": {"b": 3}}`, true},
		{`{"a": {"b": 3}}`, `{"a": {"b": 3, "c": 4}}`, false}, // exact doc match
	}
	for _, c := range cases {
		if got := matchJSON(t, c.f, c.d); got != c.want {
			t.Errorf("filter %s vs %s = %v, want %v", c.f, c.d, got, c.want)
		}
	}
}

func TestEqualityAgainstArrayElements(t *testing.T) {
	// Mongo semantics: {elements: "Li"} matches docs where elements is an
	// array containing "Li".
	if !matchJSON(t, `{"elements": "Li"}`, `{"elements": ["Li", "O"]}`) {
		t.Error("scalar eq should match array element")
	}
	if !matchJSON(t, `{"elements": ["Li", "O"]}`, `{"elements": ["Li", "O"]}`) {
		t.Error("whole-array eq should match")
	}
	if matchJSON(t, `{"elements": "Na"}`, `{"elements": ["Li", "O"]}`) {
		t.Error("non-member should not match")
	}
}

func TestComparisonOperators(t *testing.T) {
	cases := []struct {
		f, d string
		want bool
	}{
		{`{"n": {"$lt": 5}}`, `{"n": 4}`, true},
		{`{"n": {"$lt": 5}}`, `{"n": 5}`, false},
		{`{"n": {"$lte": 5}}`, `{"n": 5}`, true},
		{`{"n": {"$gt": 5}}`, `{"n": 6}`, true},
		{`{"n": {"$gte": 5}}`, `{"n": 5}`, true},
		{`{"n": {"$gte": 5, "$lt": 10}}`, `{"n": 7}`, true},
		{`{"n": {"$gte": 5, "$lt": 10}}`, `{"n": 10}`, false},
		{`{"n": {"$gt": 1}}`, `{"m": 2}`, false},     // missing
		{`{"n": {"$gt": 1}}`, `{"n": "str"}`, false}, // cross-type
		{`{"s": {"$gt": "a"}}`, `{"s": "b"}`, true},  // strings compare
		{`{"n": {"$ne": 3}}`, `{"n": 4}`, true},
		{`{"n": {"$ne": 3}}`, `{"n": 3}`, false},
		{`{"n": {"$ne": 3}}`, `{}`, true}, // $ne matches missing
		{`{"tags": {"$ne": "x"}}`, `{"tags": ["x", "y"]}`, false},
		{`{"tags": {"$ne": "z"}}`, `{"tags": ["x", "y"]}`, true},
	}
	for _, c := range cases {
		if got := matchJSON(t, c.f, c.d); got != c.want {
			t.Errorf("filter %s vs %s = %v, want %v", c.f, c.d, got, c.want)
		}
	}
}

func TestComparisonAgainstArray(t *testing.T) {
	// Per-element comparison semantics.
	if !matchJSON(t, `{"scores": {"$gt": 8}}`, `{"scores": [3, 9]}`) {
		t.Error("$gt should match any array element")
	}
	if matchJSON(t, `{"scores": {"$gt": 10}}`, `{"scores": [3, 9]}`) {
		t.Error("$gt matched though no element qualifies")
	}
}

func TestPaperExampleQuery(t *testing.T) {
	// The exact query from §III-B2 of the paper.
	f := doc(`{"elements": {"$all": ["Li", "O"]}, "nelectrons": {"$lte": 200}}`)
	flt := MustCompile(f)
	match := doc(`{"elements": ["Li", "Fe", "O"], "nelectrons": 120}`)
	if !flt.Matches(match) {
		t.Error("paper query should match LiFeO with 120 electrons")
	}
	noLi := doc(`{"elements": ["Na", "O"], "nelectrons": 120}`)
	if flt.Matches(noLi) {
		t.Error("paper query matched crystal without Li")
	}
	tooMany := doc(`{"elements": ["Li", "O"], "nelectrons": 220}`)
	if flt.Matches(tooMany) {
		t.Error("paper query matched crystal with 220 electrons")
	}
}

func TestInNin(t *testing.T) {
	cases := []struct {
		f, d string
		want bool
	}{
		{`{"e": {"$in": ["Fe", "Co"]}}`, `{"e": "Fe"}`, true},
		{`{"e": {"$in": ["Fe", "Co"]}}`, `{"e": "Ni"}`, false},
		{`{"e": {"$in": ["Fe"]}}`, `{"e": ["Mn", "Fe"]}`, true}, // array element
		{`{"e": {"$in": [null]}}`, `{}`, true},
		{`{"e": {"$nin": ["Fe"]}}`, `{"e": "Ni"}`, true},
		{`{"e": {"$nin": ["Fe"]}}`, `{"e": "Fe"}`, false},
	}
	for _, c := range cases {
		if got := matchJSON(t, c.f, c.d); got != c.want {
			t.Errorf("filter %s vs %s = %v, want %v", c.f, c.d, got, c.want)
		}
	}
}

func TestAll(t *testing.T) {
	cases := []struct {
		f, d string
		want bool
	}{
		{`{"e": {"$all": ["Li", "O"]}}`, `{"e": ["Li", "Fe", "O"]}`, true},
		{`{"e": {"$all": ["Li", "O"]}}`, `{"e": ["Li"]}`, false},
		{`{"e": {"$all": ["Li"]}}`, `{"e": "Li"}`, true}, // scalar field
		{`{"e": {"$all": []}}`, `{"e": ["Li"]}`, true},
		{`{"e": {"$all": ["Li"]}}`, `{}`, false},
	}
	for _, c := range cases {
		if got := matchJSON(t, c.f, c.d); got != c.want {
			t.Errorf("filter %s vs %s = %v, want %v", c.f, c.d, got, c.want)
		}
	}
}

func TestExistsSizeType(t *testing.T) {
	cases := []struct {
		f, d string
		want bool
	}{
		{`{"a": {"$exists": true}}`, `{"a": 0}`, true},
		{`{"a": {"$exists": true}}`, `{}`, false},
		{`{"a": {"$exists": false}}`, `{}`, true},
		{`{"a": {"$size": 2}}`, `{"a": [1, 2]}`, true},
		{`{"a": {"$size": 2}}`, `{"a": [1]}`, false},
		{`{"a": {"$size": 2}}`, `{"a": "xy"}`, false},
		{`{"a": {"$type": "string"}}`, `{"a": "s"}`, true},
		{`{"a": {"$type": "int"}}`, `{"a": 3}`, true},
		{`{"a": {"$type": "double"}}`, `{"a": 3.5}`, true},
		{`{"a": {"$type": "number"}}`, `{"a": 3}`, true},
		{`{"a": {"$type": "bool"}}`, `{"a": false}`, true},
		{`{"a": {"$type": "object"}}`, `{"a": {}}`, true},
		{`{"a": {"$type": "array"}}`, `{"a": []}`, true},
		{`{"a": {"$type": "null"}}`, `{"a": null}`, true},
		{`{"a": {"$type": "string"}}`, `{"a": 3}`, false},
	}
	for _, c := range cases {
		if got := matchJSON(t, c.f, c.d); got != c.want {
			t.Errorf("filter %s vs %s = %v, want %v", c.f, c.d, got, c.want)
		}
	}
}

func TestElemMatch(t *testing.T) {
	d := `{"tasks": [{"state": "done", "energy": -3}, {"state": "failed", "energy": 0}]}`
	if !matchJSON(t, `{"tasks": {"$elemMatch": {"state": "done", "energy": {"$lt": 0}}}}`, d) {
		t.Error("$elemMatch should find done+negative-energy task")
	}
	if matchJSON(t, `{"tasks": {"$elemMatch": {"state": "failed", "energy": {"$lt": 0}}}}`, d) {
		t.Error("$elemMatch matched conditions split across elements")
	}
	// Scalar elemMatch form.
	if !matchJSON(t, `{"scores": {"$elemMatch": {"$gt": 5, "$lt": 9}}}`, `{"scores": [2, 7]}`) {
		t.Error("scalar $elemMatch should match 7")
	}
	if matchJSON(t, `{"scores": {"$elemMatch": {"$gt": 5}}}`, `{"scores": "no"}`) {
		t.Error("$elemMatch on non-array matched")
	}
}

func TestRegex(t *testing.T) {
	if !matchJSON(t, `{"formula": {"$regex": "^Li.*O\\d*$"}}`, `{"formula": "LiFeO2"}`) {
		t.Error("regex should match LiFeO2")
	}
	if matchJSON(t, `{"formula": {"$regex": "^Na"}}`, `{"formula": "LiFeO2"}`) {
		t.Error("regex ^Na matched LiFeO2")
	}
	if !matchJSON(t, `{"formula": {"$regex": "^li", "$options": "i"}}`, `{"formula": "LiFeO2"}`) {
		t.Error("case-insensitive regex failed")
	}
	if matchJSON(t, `{"n": {"$regex": "x"}}`, `{"n": 5}`) {
		t.Error("regex matched non-string")
	}
}

func TestModAndNot(t *testing.T) {
	if !matchJSON(t, `{"n": {"$mod": [4, 1]}}`, `{"n": 9}`) {
		t.Error("$mod [4,1] should match 9")
	}
	if matchJSON(t, `{"n": {"$mod": [4, 0]}}`, `{"n": 9}`) {
		t.Error("$mod [4,0] matched 9")
	}
	if !matchJSON(t, `{"n": {"$not": {"$gt": 5}}}`, `{"n": 3}`) {
		t.Error("$not $gt failed")
	}
	if matchJSON(t, `{"n": {"$not": {"$gt": 5}}}`, `{"n": 7}`) {
		t.Error("$not $gt matched 7")
	}
	// $not matches missing fields (negation of a failed predicate).
	if !matchJSON(t, `{"n": {"$not": {"$gt": 5}}}`, `{}`) {
		t.Error("$not should match missing field")
	}
}

func TestLogicalOperators(t *testing.T) {
	cases := []struct {
		f, d string
		want bool
	}{
		{`{"$or": [{"a": 1}, {"b": 2}]}`, `{"b": 2}`, true},
		{`{"$or": [{"a": 1}, {"b": 2}]}`, `{"c": 3}`, false},
		{`{"$and": [{"a": {"$gt": 0}}, {"a": {"$lt": 10}}]}`, `{"a": 5}`, true},
		{`{"$and": [{"a": {"$gt": 0}}, {"a": {"$lt": 10}}]}`, `{"a": 15}`, false},
		{`{"$nor": [{"a": 1}, {"b": 2}]}`, `{"c": 3}`, true},
		{`{"$nor": [{"a": 1}]}`, `{"a": 1}`, false},
		{`{"$or": [{"a": 1}], "b": 2}`, `{"a": 1, "b": 2}`, true},
		{`{"$or": [{"a": 1}], "b": 2}`, `{"a": 1, "b": 3}`, false},
	}
	for _, c := range cases {
		if got := matchJSON(t, c.f, c.d); got != c.want {
			t.Errorf("filter %s vs %s = %v, want %v", c.f, c.d, got, c.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`{"$or": "x"}`,
		`{"$or": []}`,
		`{"$or": [3]}`,
		`{"$unknown": 1}`,
		`{"a": {"$in": 3}}`,
		`{"a": {"$all": 3}}`,
		`{"a": {"$exists": 1}}`,
		`{"a": {"$size": "x"}}`,
		`{"a": {"$elemMatch": 3}}`,
		`{"a": {"$regex": 3}}`,
		`{"a": {"$regex": "["}}`,
		`{"a": {"$mod": [0, 1]}}`,
		`{"a": {"$mod": [3]}}`,
		`{"a": {"$type": 3}}`,
		`{"a": {"$not": 3}}`,
		`{"a": {"$bogus": 1}}`,
		`{"$not": {"a": 1}}`,
	}
	for _, f := range bad {
		if _, err := Compile(doc(f)); err == nil {
			t.Errorf("Compile(%s): want error, got nil", f)
		}
	}
}

func TestEqualityFieldsForIndexSelection(t *testing.T) {
	flt := MustCompile(doc(`{"state": "ready", "priority": {"$eq": 5}, "n": {"$lt": 10}}`))
	eq := flt.EqualityFields()
	if eq["state"] != "ready" {
		t.Errorf("state eq = %v", eq["state"])
	}
	if eq["priority"] != int64(5) {
		t.Errorf("priority eq = %v", eq["priority"])
	}
	if _, ok := eq["n"]; ok {
		t.Error("range field reported as equality")
	}
	ranges := flt.RangeFields()
	if len(ranges) != 1 || ranges[0].Path != "n" || !ranges[0].HasMax || ranges[0].HasMin {
		t.Errorf("ranges = %+v", ranges)
	}
	contains := MustCompile(doc(`{"elements": {"$all": ["Li", "O"]}}`)).ContainsFields()
	if len(contains) != 2 {
		t.Errorf("contains = %+v", contains)
	}
}

func TestEqualityFieldsInsideAnd(t *testing.T) {
	flt := MustCompile(doc(`{"$and": [{"a": 1}, {"b": {"$gte": 2}}]}`))
	if flt.EqualityFields()["a"] != int64(1) {
		t.Error("$and equality constraint not surfaced")
	}
}

func TestQuickFilterNeverPanicsAndIsConsistent(t *testing.T) {
	f := func(n int64, s string) bool {
		d := document.D{"n": n, "s": s, "arr": []any{n, s}}
		flt := MustCompile(document.D{"n": document.D{"$gte": n}})
		if !flt.Matches(d) {
			return false
		}
		flt2 := MustCompile(document.D{"n": document.D{"$gt": n}})
		return !flt2.Matches(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickInIffEqualityExists(t *testing.T) {
	f := func(vals []int64, probe int64) bool {
		set := make([]any, len(vals))
		member := false
		for i, v := range vals {
			set[i] = v
			if v == probe {
				member = true
			}
		}
		flt := MustCompile(document.D{"x": document.D{"$in": set}})
		return flt.Matches(document.D{"x": probe}) == member
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
