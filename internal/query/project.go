package query

import (
	"fmt"
	"sort"
	"strings"

	"matproj/internal/document"
)

// Projection selects which fields of matching documents are returned,
// using MongoDB's {field: 1} inclusion / {field: 0} exclusion syntax.
// Inclusion and exclusion cannot be mixed except that "_id" may always be
// excluded from an inclusion projection.
type Projection struct {
	include bool
	paths   []string
	dropID  bool
}

// CompileProjection validates a projection document. A nil or empty
// projection returns documents whole.
func CompileProjection(p document.D) (*Projection, error) {
	if len(p) == 0 {
		return nil, nil
	}
	p = document.NormalizeDoc(p)
	proj := &Projection{}
	mode := 0 // 0 undecided, 1 include, -1 exclude
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := p[k]
		on, err := projFlag(v)
		if err != nil {
			return nil, fmt.Errorf("query: projection %q: %w", k, err)
		}
		if k == "_id" && !on {
			proj.dropID = true
			continue
		}
		want := -1
		if on {
			want = 1
		}
		if mode == 0 {
			mode = want
		} else if mode != want {
			return nil, fmt.Errorf("query: projection cannot mix inclusion and exclusion (field %q)", k)
		}
		proj.paths = append(proj.paths, k)
	}
	if mode == 0 {
		// Only {_id: 0}: treat as exclusion of _id alone.
		mode = -1
	}
	proj.include = mode == 1
	return proj, nil
}

// MustCompileProjection panics on error.
func MustCompileProjection(p document.D) *Projection {
	c, err := CompileProjection(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Apply returns a new document containing the projected fields of doc.
// The input document is never mutated.
func (p *Projection) Apply(doc document.D) document.D {
	if p == nil {
		return doc.Copy()
	}
	if p.include {
		out := document.New()
		if !p.dropID {
			if id, ok := doc["_id"]; ok {
				out["_id"] = id
			}
		}
		for _, path := range p.paths {
			if v, ok := doc.Get(path); ok {
				// Deep-copy through the normalizer-free copy path by
				// setting into a fresh doc.
				if err := out.Set(path, copyProj(v)); err != nil {
					continue
				}
			}
		}
		return out
	}
	out := doc.Copy()
	for _, path := range p.paths {
		out.Unset(path)
	}
	if p.dropID {
		delete(out, "_id")
	}
	return out
}

func copyProj(v any) any {
	switch x := v.(type) {
	case map[string]any:
		return map[string]any(document.D(x).Copy())
	case []any:
		out := make([]any, len(x))
		for i, el := range x {
			out[i] = copyProj(el)
		}
		return out
	default:
		return x
	}
}

func projFlag(v any) (bool, error) {
	switch x := v.(type) {
	case bool:
		return x, nil
	case int64:
		return x != 0, nil
	case float64:
		return x != 0, nil
	}
	return false, fmt.Errorf("expected 0/1/bool, got %T", v)
}

// SortKey is one component of a sort specification.
type SortKey struct {
	Path string
	Desc bool
}

// ParseSort converts a MongoDB-style sort document (field: 1 / -1) given
// as an ordered slice of "field" or "-field" strings into sort keys.
// The slice form is used because Go maps do not preserve order.
func ParseSort(spec []string) ([]SortKey, error) {
	keys := make([]SortKey, 0, len(spec))
	for _, s := range spec {
		if s == "" || s == "-" {
			return nil, fmt.Errorf("query: empty sort field")
		}
		if strings.HasPrefix(s, "-") {
			keys = append(keys, SortKey{Path: s[1:], Desc: true})
		} else {
			keys = append(keys, SortKey{Path: s})
		}
	}
	return keys, nil
}

// SortDocs sorts docs in place by the given keys using the total order of
// document.Compare. Missing fields sort before present ones (like BSON
// null ordering). The sort is stable.
func SortDocs(docs []document.D, keys []SortKey) {
	if len(keys) == 0 {
		return
	}
	sort.SliceStable(docs, func(i, j int) bool {
		return CompareByKeys(docs[i], docs[j], keys) < 0
	})
}

// CompareByKeys compares two documents under a sort specification.
func CompareByKeys(a, b document.D, keys []SortKey) int {
	for _, k := range keys {
		va, _ := a.Get(k.Path)
		vb, _ := b.Get(k.Path)
		c := document.Compare(va, vb)
		if c != 0 {
			if k.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}
