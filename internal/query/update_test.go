package query

import (
	"testing"
	"testing/quick"

	"matproj/internal/document"
)

// applyJSON compiles update u and applies it to a document parsed from d.
func applyJSON(t *testing.T, u, d string) document.D {
	t.Helper()
	upd, err := CompileUpdate(doc(u))
	if err != nil {
		t.Fatalf("CompileUpdate(%s): %v", u, err)
	}
	out, err := upd.Apply(doc(d))
	if err != nil {
		t.Fatalf("Apply(%s on %s): %v", u, d, err)
	}
	return out
}

func TestSetUnset(t *testing.T) {
	out := applyJSON(t, `{"$set": {"state": "done", "output.energy": -3.5}, "$unset": {"tmp": ""}}`,
		`{"state": "running", "tmp": 1}`)
	if out["state"] != "done" {
		t.Errorf("state = %v", out["state"])
	}
	if v, _ := out.Get("output.energy"); v != -3.5 {
		t.Errorf("output.energy = %v", v)
	}
	if out.Has("tmp") {
		t.Error("tmp not unset")
	}
}

func TestIncMul(t *testing.T) {
	out := applyJSON(t, `{"$inc": {"count": 2, "fresh": 5}, "$mul": {"scale": 3}}`,
		`{"count": 1, "scale": 2}`)
	if out["count"] != int64(3) {
		t.Errorf("count = %v (%T)", out["count"], out["count"])
	}
	if out["fresh"] != int64(5) {
		t.Errorf("fresh = %v", out["fresh"])
	}
	if out["scale"] != int64(6) {
		t.Errorf("scale = %v", out["scale"])
	}
	// $mul missing field -> 0 (Mongo semantics).
	out2 := applyJSON(t, `{"$mul": {"missing": 3}}`, `{}`)
	if out2["missing"] != int64(0) {
		t.Errorf("missing after $mul = %v", out2["missing"])
	}
	// Float propagation.
	out3 := applyJSON(t, `{"$inc": {"x": 0.5}}`, `{"x": 1}`)
	if out3["x"] != 1.5 {
		t.Errorf("x = %v", out3["x"])
	}
}

func TestIncNonNumericErrors(t *testing.T) {
	upd := MustCompileUpdate(doc(`{"$inc": {"s": 1}}`))
	if _, err := upd.Apply(doc(`{"s": "str"}`)); err == nil {
		t.Error("$inc on string: want error")
	}
}

func TestMinMax(t *testing.T) {
	out := applyJSON(t, `{"$min": {"lo": 3}, "$max": {"hi": 3}}`, `{"lo": 5, "hi": 5}`)
	if out["lo"] != int64(3) {
		t.Errorf("lo = %v", out["lo"])
	}
	if out["hi"] != int64(5) {
		t.Errorf("hi = %v", out["hi"])
	}
	out2 := applyJSON(t, `{"$min": {"fresh": 7}}`, `{}`)
	if out2["fresh"] != int64(7) {
		t.Errorf("fresh = %v", out2["fresh"])
	}
}

func TestRename(t *testing.T) {
	out := applyJSON(t, `{"$rename": {"old": "new.nested"}}`, `{"old": 42}`)
	if out.Has("old") {
		t.Error("old still present")
	}
	if v, _ := out.Get("new.nested"); v != int64(42) {
		t.Errorf("new.nested = %v", v)
	}
	// Renaming a missing field is a no-op.
	out2 := applyJSON(t, `{"$rename": {"ghost": "x"}}`, `{"a": 1}`)
	if out2.Has("x") {
		t.Error("rename of missing field created target")
	}
}

func TestPushAndEach(t *testing.T) {
	out := applyJSON(t, `{"$push": {"log": "step1"}}`, `{"log": []}`)
	if arr := out.GetArray("log"); len(arr) != 1 || arr[0] != "step1" {
		t.Errorf("log = %v", arr)
	}
	out2 := applyJSON(t, `{"$push": {"log": {"$each": [1, 2]}}}`, `{}`)
	if arr := out2.GetArray("log"); len(arr) != 2 {
		t.Errorf("log = %v", arr)
	}
	upd := MustCompileUpdate(doc(`{"$push": {"n": 1}}`))
	if _, err := upd.Apply(doc(`{"n": 3}`)); err == nil {
		t.Error("$push to scalar: want error")
	}
}

func TestAddToSet(t *testing.T) {
	out := applyJSON(t, `{"$addToSet": {"e": "Li"}}`, `{"e": ["Li", "O"]}`)
	if arr := out.GetArray("e"); len(arr) != 2 {
		t.Errorf("e after dup add = %v", arr)
	}
	out2 := applyJSON(t, `{"$addToSet": {"e": {"$each": ["Na", "O"]}}}`, `{"e": ["O"]}`)
	if arr := out2.GetArray("e"); len(arr) != 2 {
		t.Errorf("e after $each = %v", arr)
	}
}

func TestPull(t *testing.T) {
	out := applyJSON(t, `{"$pull": {"n": 2}}`, `{"n": [1, 2, 3, 2]}`)
	if arr := out.GetArray("n"); len(arr) != 2 || arr[0] != int64(1) || arr[1] != int64(3) {
		t.Errorf("n = %v", arr)
	}
	// Operator form.
	out2 := applyJSON(t, `{"$pull": {"n": {"$gte": 2}}}`, `{"n": [1, 2, 3]}`)
	if arr := out2.GetArray("n"); len(arr) != 1 || arr[0] != int64(1) {
		t.Errorf("n = %v", arr)
	}
	// Pull everything leaves an empty array, not nil.
	out3 := applyJSON(t, `{"$pull": {"n": {"$gte": 0}}}`, `{"n": [1]}`)
	if arr := out3.GetArray("n"); arr == nil || len(arr) != 0 {
		t.Errorf("n = %#v", out3["n"])
	}
	// Missing field no-op.
	out4 := applyJSON(t, `{"$pull": {"ghost": 1}}`, `{}`)
	if out4.Has("ghost") {
		t.Error("pull created field")
	}
}

func TestPop(t *testing.T) {
	out := applyJSON(t, `{"$pop": {"n": 1}}`, `{"n": [1, 2, 3]}`)
	if arr := out.GetArray("n"); len(arr) != 2 || arr[1] != int64(2) {
		t.Errorf("pop tail: n = %v", arr)
	}
	out2 := applyJSON(t, `{"$pop": {"n": -1}}`, `{"n": [1, 2, 3]}`)
	if arr := out2.GetArray("n"); len(arr) != 2 || arr[0] != int64(2) {
		t.Errorf("pop head: n = %v", arr)
	}
	out3 := applyJSON(t, `{"$pop": {"n": 1}}`, `{"n": []}`)
	if arr := out3.GetArray("n"); len(arr) != 0 {
		t.Errorf("pop empty: n = %v", arr)
	}
}

func TestReplacementPreservesID(t *testing.T) {
	upd := MustCompileUpdate(doc(`{"brand": "new"}`))
	if !upd.IsReplacement() {
		t.Fatal("expected replacement")
	}
	orig := doc(`{"_id": "m-1", "old": true}`)
	out, err := upd.Apply(orig)
	if err != nil {
		t.Fatal(err)
	}
	if out["_id"] != "m-1" {
		t.Errorf("_id = %v", out["_id"])
	}
	if out.Has("old") {
		t.Error("replacement kept old field")
	}
	if !orig.Has("old") {
		t.Error("replacement mutated original")
	}
	// Replacement with explicit _id wins.
	upd2 := MustCompileUpdate(doc(`{"_id": "other"}`))
	out2, _ := upd2.Apply(orig)
	if out2["_id"] != "other" {
		t.Errorf("_id = %v", out2["_id"])
	}
}

func TestCompileUpdateErrors(t *testing.T) {
	bad := []string{
		`{"$set": {"a": 1}, "plain": 2}`,
		`{"$set": 3}`,
		`{"$bogus": {"a": 1}}`,
		`{"$inc": {"a": "x"}}`,
		`{"$pop": {"a": 2}}`,
		`{"$pop": {"a": "x"}}`,
		`{"$rename": {"a": 3}}`,
	}
	for _, u := range bad {
		if _, err := CompileUpdate(doc(u)); err == nil {
			t.Errorf("CompileUpdate(%s): want error", u)
		}
	}
}

func TestUpdateOrderIsDeterministic(t *testing.T) {
	// Operators apply in sorted op order then sorted path order, so
	// $inc before $set: $set wins on the same field.
	out := applyJSON(t, `{"$inc": {"x": 1}, "$set": {"x": 100}}`, `{"x": 0}`)
	if out["x"] != int64(100) {
		t.Errorf("x = %v, want deterministic $set-last result 100", out["x"])
	}
}

func TestPushEachNonArrayErrors(t *testing.T) {
	upd := MustCompileUpdate(document.D{"$push": document.D{"a": document.D{"$each": "x"}}})
	if _, err := upd.Apply(document.D{}); err == nil {
		t.Error("$push $each non-array: want error")
	}
	upd2 := MustCompileUpdate(document.D{"$addToSet": document.D{"a": document.D{"$each": "x"}}})
	if _, err := upd2.Apply(document.D{}); err == nil {
		t.Error("$addToSet $each non-array: want error")
	}
}

func TestQuickIncIsCommutative(t *testing.T) {
	f := func(deltas []int8) bool {
		a := document.D{"n": int64(0)}
		b := document.D{"n": int64(0)}
		// Apply forward to a, backward to b.
		for _, d := range deltas {
			upd := MustCompileUpdate(document.D{"$inc": document.D{"n": int64(d)}})
			if _, err := upd.Apply(a); err != nil {
				return false
			}
		}
		for i := len(deltas) - 1; i >= 0; i-- {
			upd := MustCompileUpdate(document.D{"$inc": document.D{"n": int64(deltas[i])}})
			if _, err := upd.Apply(b); err != nil {
				return false
			}
		}
		return document.Equal(a["n"], b["n"])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPushGrowsByOne(t *testing.T) {
	f := func(vals []int16) bool {
		d := document.D{"arr": []any{}}
		for i, v := range vals {
			upd := MustCompileUpdate(document.D{"$push": document.D{"arr": int64(v)}})
			if _, err := upd.Apply(d); err != nil {
				return false
			}
			if len(d.GetArray("arr")) != i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddToSetIdempotent(t *testing.T) {
	f := func(vals []int8) bool {
		d := document.D{"set": []any{}}
		seen := map[int8]bool{}
		for _, v := range vals {
			seen[v] = true
			upd := MustCompileUpdate(document.D{"$addToSet": document.D{"set": int64(v)}})
			if _, err := upd.Apply(d); err != nil {
				return false
			}
			// Applying the same value twice must not grow the set.
			if _, err := upd.Apply(d); err != nil {
				return false
			}
		}
		return len(d.GetArray("set")) == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSetUnsetRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		d := document.D{"keep": "x"}
		set := MustCompileUpdate(document.D{"$set": document.D{"tmp.deep": v}})
		if _, err := set.Apply(d); err != nil {
			return false
		}
		got, ok := d.Get("tmp.deep")
		if !ok || got != v {
			return false
		}
		unset := MustCompileUpdate(document.D{"$unset": document.D{"tmp.deep": ""}})
		if _, err := unset.Apply(d); err != nil {
			return false
		}
		return !d.Has("tmp.deep") && d["keep"] == "x"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
