package query

import (
	"fmt"
	"sort"
	"strings"

	"matproj/internal/document"
)

// Update is a compiled update specification: either a full-document
// replacement or a set of atomic operators ($set, $unset, $inc, $mul,
// $min, $max, $rename, $push, $addToSet, $pull, $pop).
type Update struct {
	replacement document.D
	ops         []updateOp
}

type updateOp struct {
	op   string
	path string
	arg  any
}

// CompileUpdate validates and compiles an update document. A document with
// no $-prefixed keys is a replacement; mixing operators and plain keys is
// an error, matching MongoDB.
func CompileUpdate(u document.D) (*Update, error) {
	u = document.NormalizeDoc(u)
	hasOps, hasPlain := false, false
	for k := range u {
		if strings.HasPrefix(k, "$") {
			hasOps = true
		} else {
			hasPlain = true
		}
	}
	if hasOps && hasPlain {
		return nil, fmt.Errorf("query: update cannot mix operators and replacement fields")
	}
	if !hasOps {
		return &Update{replacement: u}, nil
	}
	upd := &Update{}
	opNames := make([]string, 0, len(u))
	for op := range u {
		opNames = append(opNames, op)
	}
	sort.Strings(opNames)
	for _, op := range opNames {
		spec, ok := u[op].(map[string]any)
		if !ok {
			return nil, fmt.Errorf("query: %s requires a document of field: value pairs", op)
		}
		switch op {
		case "$set", "$unset", "$inc", "$mul", "$min", "$max",
			"$push", "$addToSet", "$pull", "$pop", "$rename":
		default:
			return nil, fmt.Errorf("query: unknown update operator %q", op)
		}
		paths := make([]string, 0, len(spec))
		for p := range spec {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			arg := spec[p]
			switch op {
			case "$inc", "$mul":
				if _, ok := document.AsFloat(arg); !ok {
					return nil, fmt.Errorf("query: %s %q requires a numeric argument", op, p)
				}
			case "$pop":
				if n, ok := arg.(int64); !ok || (n != 1 && n != -1) {
					return nil, fmt.Errorf("query: $pop %q requires 1 or -1", p)
				}
			case "$rename":
				if _, ok := arg.(string); !ok {
					return nil, fmt.Errorf("query: $rename %q requires a string target", p)
				}
			}
			upd.ops = append(upd.ops, updateOp{op: op, path: p, arg: arg})
		}
	}
	return upd, nil
}

// MustCompileUpdate panics on error; for fixed updates in tests/examples.
func MustCompileUpdate(u document.D) *Update {
	c, err := CompileUpdate(u)
	if err != nil {
		panic(err)
	}
	return c
}

// IsReplacement reports whether applying this update replaces the whole
// document rather than mutating fields.
func (u *Update) IsReplacement() bool { return u.replacement != nil }

// Apply mutates doc in place according to the update. For replacements the
// returned document is a fresh copy of the replacement (preserving the
// original _id if the replacement lacks one) and doc is left untouched.
func (u *Update) Apply(doc document.D) (document.D, error) {
	if u.replacement != nil {
		out := u.replacement.Copy()
		if _, ok := out["_id"]; !ok {
			if id, ok := doc["_id"]; ok {
				out["_id"] = id
			}
		}
		return out, nil
	}
	for _, op := range u.ops {
		if err := applyOp(doc, op); err != nil {
			return nil, err
		}
	}
	return doc, nil
}

func applyOp(doc document.D, op updateOp) error {
	switch op.op {
	case "$set":
		return doc.Set(op.path, op.arg)
	case "$unset":
		doc.Unset(op.path)
		return nil
	case "$inc", "$mul":
		delta, _ := document.AsFloat(op.arg)
		cur, ok := doc.Get(op.path)
		if !ok {
			if op.op == "$mul" {
				return doc.Set(op.path, int64(0))
			}
			return doc.Set(op.path, op.arg)
		}
		curF, isNum := document.AsFloat(cur)
		if !isNum {
			return fmt.Errorf("query: %s target %q is not numeric", op.op, op.path)
		}
		var res float64
		if op.op == "$inc" {
			res = curF + delta
		} else {
			res = curF * delta
		}
		// Keep integers integral when both operands are int64.
		_, curInt := cur.(int64)
		_, argInt := op.arg.(int64)
		if curInt && argInt {
			return doc.Set(op.path, int64(res))
		}
		return doc.Set(op.path, res)
	case "$min", "$max":
		cur, ok := doc.Get(op.path)
		if !ok {
			return doc.Set(op.path, op.arg)
		}
		c := document.Compare(op.arg, cur)
		if (op.op == "$min" && c < 0) || (op.op == "$max" && c > 0) {
			return doc.Set(op.path, op.arg)
		}
		return nil
	case "$rename":
		target := op.arg.(string)
		v, ok := doc.Get(op.path)
		if !ok {
			return nil
		}
		doc.Unset(op.path)
		return doc.Set(target, v)
	case "$push":
		items := []any{op.arg}
		if spec, ok := op.arg.(map[string]any); ok {
			if each, hasEach := spec["$each"]; hasEach {
				arr, ok := each.([]any)
				if !ok {
					return fmt.Errorf("query: $push $each for %q requires an array", op.path)
				}
				items = arr
			}
		}
		cur, ok := doc.Get(op.path)
		var arr []any
		if ok {
			arr, ok = cur.([]any)
			if !ok {
				return fmt.Errorf("query: $push target %q is not an array", op.path)
			}
		}
		arr = append(arr, items...)
		return doc.Set(op.path, arr)
	case "$addToSet":
		items := []any{op.arg}
		if spec, ok := op.arg.(map[string]any); ok {
			if each, hasEach := spec["$each"]; hasEach {
				arr, ok := each.([]any)
				if !ok {
					return fmt.Errorf("query: $addToSet $each for %q requires an array", op.path)
				}
				items = arr
			}
		}
		cur, ok := doc.Get(op.path)
		var arr []any
		if ok {
			arr, ok = cur.([]any)
			if !ok {
				return fmt.Errorf("query: $addToSet target %q is not an array", op.path)
			}
		}
		for _, item := range items {
			dup := false
			for _, el := range arr {
				if document.Equal(el, item) {
					dup = true
					break
				}
			}
			if !dup {
				arr = append(arr, item)
			}
		}
		return doc.Set(op.path, arr)
	case "$pull":
		cur, ok := doc.Get(op.path)
		if !ok {
			return nil
		}
		arr, ok := cur.([]any)
		if !ok {
			return fmt.Errorf("query: $pull target %q is not an array", op.path)
		}
		// $pull argument may be a literal or an operator condition.
		var keep []any
		if cond, isDoc := op.arg.(map[string]any); isDoc && hasOperatorKey(cond) {
			pred, _, err := compileOperators(op.path, cond)
			if err != nil {
				return err
			}
			for _, el := range arr {
				if !pred.test(el, true) {
					keep = append(keep, el)
				}
			}
		} else {
			for _, el := range arr {
				if !document.Equal(el, op.arg) {
					keep = append(keep, el)
				}
			}
		}
		if keep == nil {
			keep = []any{}
		}
		return doc.Set(op.path, keep)
	case "$pop":
		cur, ok := doc.Get(op.path)
		if !ok {
			return nil
		}
		arr, ok := cur.([]any)
		if !ok {
			return fmt.Errorf("query: $pop target %q is not an array", op.path)
		}
		if len(arr) == 0 {
			return nil
		}
		if op.arg.(int64) == 1 {
			arr = arr[:len(arr)-1]
		} else {
			arr = arr[1:]
		}
		return doc.Set(op.path, arr)
	}
	return fmt.Errorf("query: unhandled update op %q", op.op)
}
