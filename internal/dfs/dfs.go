// Package dfs implements the HDFS pre-staging path of §IV-B2: "For
// larger-scale analytics ... efficiency can be gained by pre-staging the
// MongoDB data to HDFS", while "MongoDB will continue to contain
// references to the data that allow queries to be performed using the
// QueryEngine abstraction layer".
//
// A staged set is a directory of NDJSON chunk files plus a reference
// document registered back in the datastore (the dfs_refs collection).
// RunStaged executes a MapReduce job directly over the chunk files with
// chunk-level parallelism, bypassing the store entirely — the
// "Hadoop reading HDFS" configuration of the paper's comparison.
package dfs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/mapreduce"
)

// RefsCollection is where staged-set references live in the store.
const RefsCollection = "dfs_refs"

// FS is a root directory acting as the distributed filesystem.
type FS struct {
	Root string
}

// Open creates (if needed) and opens a DFS root.
func Open(root string) (*FS, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: %w", err)
	}
	return &FS{Root: root}, nil
}

// StagedSet describes one staged collection.
type StagedSet struct {
	Name   string
	Chunks []string // chunk file paths, ordered
	Docs   int
}

// Stage exports every document of a collection matching filter into
// chunk files of at most chunkDocs documents each, and registers a
// reference document in the source store.
func (fs *FS) Stage(store *datastore.Store, collection string, filter document.D, name string, chunkDocs int) (*StagedSet, error) {
	if chunkDocs < 1 {
		chunkDocs = 1000
	}
	docs, err := store.C(collection).FindAll(filter, nil)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(fs.Root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: %w", err)
	}
	set := &StagedSet{Name: name, Docs: len(docs)}
	for start := 0; start < len(docs); start += chunkDocs {
		end := start + chunkDocs
		if end > len(docs) {
			end = len(docs)
		}
		path := filepath.Join(dir, fmt.Sprintf("chunk-%05d.ndjson", len(set.Chunks)))
		if err := writeChunk(path, docs[start:end]); err != nil {
			return nil, err
		}
		set.Chunks = append(set.Chunks, path)
	}
	// "MongoDB will continue to contain references to the data": register
	// the staged set in the store so QueryEngine users can discover it.
	chunks := make([]any, len(set.Chunks))
	for i, c := range set.Chunks {
		chunks[i] = c
	}
	refs := store.C(RefsCollection)
	if _, err := refs.Remove(document.D{"_id": "dfsref-" + name}); err != nil {
		return nil, err
	}
	if _, err := refs.Insert(document.D{
		"_id":        "dfsref-" + name,
		"collection": collection,
		"docs":       int64(set.Docs),
		"chunks":     chunks,
	}); err != nil {
		return nil, err
	}
	return set, nil
}

// LoadRef reconstructs a StagedSet from its reference document.
func LoadRef(store *datastore.Store, name string) (*StagedSet, error) {
	ref, err := store.C(RefsCollection).FindID("dfsref-" + name)
	if err != nil {
		return nil, fmt.Errorf("dfs: no staged set %q: %w", name, err)
	}
	set := &StagedSet{Name: name}
	if n, ok := ref.GetInt("docs"); ok {
		set.Docs = int(n)
	}
	for _, c := range ref.GetArray("chunks") {
		if s, ok := c.(string); ok {
			set.Chunks = append(set.Chunks, s)
		}
	}
	return set, nil
}

func writeChunk(path string, docs []document.D) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dfs: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, d := range docs {
		if err := enc.Encode(map[string]any(d)); err != nil {
			f.Close()
			return fmt.Errorf("dfs: encode: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadChunk loads one chunk file.
func ReadChunk(path string) ([]document.D, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dfs: %w", err)
	}
	defer f.Close()
	var out []document.D
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		d, err := document.FromJSON(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("dfs: %s line %d: %w", path, line, err)
		}
		out = append(out, d)
	}
	return out, sc.Err()
}

// RunStaged executes a MapReduce job over a staged set with chunk-level
// parallelism: workers read, map, and combine chunks independently, then
// groups merge and reduce. Results are sorted by key, matching the other
// engines' output contract.
func RunStaged(set *StagedSet, mapper mapreduce.MapFunc, reducer mapreduce.ReduceFunc, workers int) ([]mapreduce.Result, error) {
	if workers < 1 {
		workers = 4
	}
	type chunkGroups struct {
		groups map[string][]any
		err    error
	}
	results := make([]chunkGroups, len(set.Chunks))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, path := range set.Chunks {
		wg.Add(1)
		go func(i int, path string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			docs, err := ReadChunk(path)
			if err != nil {
				results[i] = chunkGroups{err: err}
				return
			}
			groups := make(map[string][]any)
			for _, d := range docs {
				mapper(d, func(k string, v any) {
					groups[k] = append(groups[k], document.Normalize(v))
				})
			}
			// Chunk-local combine (reducer must be associative).
			for k, vs := range groups {
				if len(vs) > 1 {
					groups[k] = []any{document.Normalize(reducer(k, vs))}
				}
			}
			results[i] = chunkGroups{groups: groups}
		}(i, path)
	}
	wg.Wait()
	merged := make(map[string][]any)
	for _, cg := range results {
		if cg.err != nil {
			return nil, cg.err
		}
		for k, vs := range cg.groups {
			merged[k] = append(merged[k], vs...)
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]mapreduce.Result, 0, len(keys))
	for _, k := range keys {
		vs := merged[k]
		var v any
		if len(vs) == 1 {
			v = vs[0]
		} else {
			v = document.Normalize(reducer(k, vs))
		}
		out = append(out, mapreduce.Result{Key: k, Value: v})
	}
	return out, nil
}
