package dfs

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/mapreduce"
)

func seedStore(t *testing.T, n int) *datastore.Store {
	t.Helper()
	store := datastore.MustOpenMemory()
	tasks := store.C("tasks")
	for i := 0; i < n; i++ {
		_, err := tasks.Insert(document.D{
			"_id":    fmt.Sprintf("t%05d", i),
			"group":  fmt.Sprintf("g%02d", i%7),
			"energy": -float64(i%13) - 1,
			"state":  "successful",
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func countMap(d document.D, emit func(string, any)) { emit(d.GetString("group"), int64(1)) }
func sumReduce(_ string, vs []any) any {
	var n int64
	for _, v := range vs {
		i, _ := v.(int64)
		n += i
	}
	return n
}

func TestStageWritesChunksAndRef(t *testing.T) {
	store := seedStore(t, 105)
	fs, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set, err := fs.Stage(store, "tasks", nil, "tasks-v1", 25)
	if err != nil {
		t.Fatal(err)
	}
	if set.Docs != 105 {
		t.Errorf("docs = %d", set.Docs)
	}
	if len(set.Chunks) != 5 { // 25*4 + 5
		t.Errorf("chunks = %d", len(set.Chunks))
	}
	for _, c := range set.Chunks {
		if _, err := os.Stat(c); err != nil {
			t.Errorf("chunk missing: %v", err)
		}
	}
	// The reference lives in the store, as §IV-B2 requires.
	ref, err := store.C(RefsCollection).FindID("dfsref-tasks-v1")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := ref.GetInt("docs"); n != 105 {
		t.Errorf("ref docs = %d", n)
	}
	// LoadRef round trip.
	loaded, err := LoadRef(store, "tasks-v1")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Docs != 105 || len(loaded.Chunks) != 5 {
		t.Errorf("loaded = %+v", loaded)
	}
	if _, err := LoadRef(store, "ghost"); err == nil {
		t.Error("missing ref accepted")
	}
}

func TestStageWithFilterAndRestage(t *testing.T) {
	store := seedStore(t, 70)
	fs, _ := Open(t.TempDir())
	set, err := fs.Stage(store, "tasks", document.D{"group": "g01"}, "g01", 0)
	if err != nil {
		t.Fatal(err)
	}
	if set.Docs != 10 {
		t.Errorf("filtered docs = %d", set.Docs)
	}
	// Restaging under the same name replaces the reference.
	set2, err := fs.Stage(store, "tasks", nil, "g01", 50)
	if err != nil {
		t.Fatal(err)
	}
	if set2.Docs != 70 {
		t.Errorf("restage docs = %d", set2.Docs)
	}
	n, _ := store.C(RefsCollection).Count(nil)
	if n != 1 {
		t.Errorf("refs = %d", n)
	}
}

func TestReadChunkRoundTrip(t *testing.T) {
	store := seedStore(t, 30)
	fs, _ := Open(t.TempDir())
	set, _ := fs.Stage(store, "tasks", nil, "rt", 8)
	total := 0
	for _, c := range set.Chunks {
		docs, err := ReadChunk(c)
		if err != nil {
			t.Fatal(err)
		}
		total += len(docs)
		for _, d := range docs {
			if !d.Has("group") || !d.Has("energy") {
				t.Errorf("doc lost fields: %v", d)
			}
			// Integer fidelity through NDJSON.
			if _, ok := d.Get("_id"); !ok {
				t.Error("_id lost")
			}
		}
	}
	if total != 30 {
		t.Errorf("total = %d", total)
	}
	if _, err := ReadChunk(filepath.Join(fs.Root, "nope.ndjson")); err == nil {
		t.Error("missing chunk accepted")
	}
}

func TestRunStagedMatchesDirectEngines(t *testing.T) {
	store := seedStore(t, 200)
	fs, _ := Open(t.TempDir())
	set, _ := fs.Stage(store, "tasks", nil, "cmp", 32)

	staged, err := RunStaged(set, countMap, sumReduce, 4)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := mapreduce.RunCollection(store.C("tasks"), nil, countMap, sumReduce, mapreduce.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(staged) != len(direct) {
		t.Fatalf("staged %d vs direct %d groups", len(staged), len(direct))
	}
	for i := range staged {
		if staged[i].Key != direct[i]["_id"] {
			t.Fatalf("key mismatch at %d", i)
		}
		if !document.Equal(staged[i].Value, direct[i]["value"]) {
			t.Errorf("value mismatch for %s: %v vs %v", staged[i].Key, staged[i].Value, direct[i]["value"])
		}
	}
}

func TestRunStagedMinEnergy(t *testing.T) {
	store := seedStore(t, 100)
	fs, _ := Open(t.TempDir())
	set, _ := fs.Stage(store, "tasks", nil, "min", 16)
	res, err := RunStaged(set,
		func(d document.D, emit func(string, any)) {
			e, _ := d.GetFloat("energy")
			emit(d.GetString("group"), e)
		},
		func(_ string, vs []any) any {
			best, _ := document.AsFloat(vs[0])
			for _, v := range vs[1:] {
				if f, _ := document.AsFloat(v); f < best {
					best = f
				}
			}
			return best
		}, 0) // workers<1 clamps
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 7 {
		t.Fatalf("groups = %d", len(res))
	}
	for _, r := range res {
		f, _ := document.AsFloat(r.Value)
		if f > -1 || f < -13 {
			t.Errorf("%s min = %v", r.Key, r.Value)
		}
	}
}

func TestRunStagedCorruptChunk(t *testing.T) {
	store := seedStore(t, 10)
	fs, _ := Open(t.TempDir())
	set, _ := fs.Stage(store, "tasks", nil, "bad", 5)
	os.WriteFile(set.Chunks[0], []byte("{broken\n"), 0o644)
	if _, err := RunStaged(set, countMap, sumReduce, 2); err == nil {
		t.Error("corrupt chunk accepted")
	}
}

func TestOpenBadRoot(t *testing.T) {
	f := filepath.Join(t.TempDir(), "file")
	os.WriteFile(f, []byte("x"), 0o644)
	if _, err := Open(filepath.Join(f, "sub")); err == nil {
		t.Error("root under a file accepted")
	}
}
