package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableIOrdering(t *testing.T) {
	rows, err := TableI(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]int{}
	depth := map[string]int{}
	for _, r := range rows {
		byName[r.Collection] = r.Stats.Nodes
		depth[r.Collection] = r.Stats.Depth
	}
	// Paper shape: tasks are the largest and deepest documents; battery
	// prototypes the smallest; MPS and materials in between.
	if !(byName["Tasks"] > byName["Materials Project Source (MPS)"]) {
		t.Errorf("tasks (%d) should out-node MPS (%d)", byName["Tasks"], byName["Materials Project Source (MPS)"])
	}
	if !(byName["Tasks"] > byName["Battery prototypes"]) {
		t.Errorf("tasks (%d) should out-node battery prototypes (%d)", byName["Tasks"], byName["Battery prototypes"])
	}
	if !(depth["Tasks"] >= depth["Battery prototypes"]) {
		t.Errorf("tasks depth %d < battery depth %d", depth["Tasks"], depth["Battery prototypes"])
	}
	if !(byName["Materials"] > byName["Battery prototypes"]) {
		t.Errorf("materials (%d) should out-node battery prototypes (%d)", byName["Materials"], byName["Battery prototypes"])
	}
	if !(byName["Materials"] > byName["Materials Project Source (MPS)"]) {
		t.Errorf("materials (%d) should out-node MPS (%d): the view aggregates initial+final structures",
			byName["Materials"], byName["Materials Project Source (MPS)"])
	}
	var buf bytes.Buffer
	RenderTableI(&buf, rows)
	if !strings.Contains(buf.String(), "TABLE I") {
		t.Error("render missing header")
	}
}

func TestFig1ShapeAndRender(t *testing.T) {
	r, err := Fig1(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Candidates) < 5 {
		t.Fatalf("candidates = %d", len(r.Candidates))
	}
	if len(r.Known) < 5 {
		t.Fatal("known set shrunk")
	}
	var buf bytes.Buffer
	RenderFig1(&buf, r)
	out := buf.String()
	if !strings.Contains(out, "known materials band") || !strings.Contains(out, "K") {
		t.Error("render incomplete")
	}
}

func TestFig2FourRoles(t *testing.T) {
	r, err := Fig2(Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.WorkflowOps == 0 {
		t.Error("no workflow ops recorded")
	}
	if r.AnalyticsGroups == 0 {
		t.Error("no analytics groups")
	}
	if r.VVChecks == 0 {
		t.Error("no V&V checks")
	}
	if r.WebQueries == 0 || r.WebRecords == 0 {
		t.Error("no web traffic")
	}
	// All roles hit the same store: engines, tasks, materials, vv_reports
	// coexist.
	joined := strings.Join(r.Collections, ",")
	for _, c := range []string{"engines", "tasks", "materials", "vv_reports", "mps"} {
		if !strings.Contains(joined, c) {
			t.Errorf("collection %s missing from %v", c, r.Collections)
		}
	}
	var buf bytes.Buffer
	RenderFig2(&buf, r)
	if !strings.Contains(buf.String(), "four roles") {
		t.Error("render incomplete")
	}
}

func TestFig3Lifecycle(t *testing.T) {
	steps, err := Fig3(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 6 {
		t.Fatalf("steps = %d", len(steps))
	}
	want := []string{"a", "b", "c", "d", "e", "f"}
	for i, s := range steps {
		if s.Stage != want[i] {
			t.Errorf("step %d = %s", i, s.Stage)
		}
	}
	// Release happened.
	if !strings.Contains(steps[5].Info, "released") {
		t.Errorf("final step = %+v", steps[5])
	}
	var buf bytes.Buffer
	RenderFig3(&buf, steps)
	if !strings.Contains(buf.String(), "(f)") {
		t.Error("render incomplete")
	}
}

func TestFig4LiveAPI(t *testing.T) {
	r, err := Fig4(Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != 200 {
		t.Fatalf("status = %d body = %s", r.Status, r.Body)
	}
	if r.Energy == 0 || r.Material == "" {
		t.Errorf("result = %+v", r)
	}
	if !strings.HasPrefix(r.URI, "/rest/v1/materials/") || !strings.HasSuffix(r.URI, "/vasp/energy") {
		t.Errorf("URI = %s", r.URI)
	}
	var buf bytes.Buffer
	RenderFig4(&buf, r)
	if !strings.Contains(buf.String(), "URI anatomy") {
		t.Error("render incomplete")
	}
}

func TestFig5LatencyShape(t *testing.T) {
	r, err := Fig5(Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.N != Small.Queries {
		t.Errorf("N = %d", r.Summary.N)
	}
	// Shape of the paper's Fig. 5: a dominant mode with a thin tail —
	// p50 well under max, and the p99/p50 tail ratio finite and > 1.
	if r.Summary.P50 <= 0 {
		t.Errorf("p50 = %v", r.Summary.P50)
	}
	if r.Summary.Max < r.Summary.P99 || r.Summary.P99 < r.Summary.P50 {
		t.Errorf("summary not monotone: %+v", r.Summary)
	}
	if r.Records == 0 {
		t.Error("no records returned")
	}
	var buf bytes.Buffer
	RenderFig5(&buf, r)
	if !strings.Contains(buf.String(), "inset") {
		t.Error("render incomplete")
	}
}

func TestMapReduceComparisonShape(t *testing.T) {
	rows, err := MapReduceComparison(Small, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's claim: the parallel engine is several times faster.
	multi := rows[1]
	if multi.Workers != 4 {
		t.Fatalf("row order: %+v", rows)
	}
	if multi.Speedup < 1.5 {
		t.Errorf("parallel speedup = %.2fx, want clearly > 1 (builtin %.1fms, parallel %.1fms)",
			multi.Speedup, multi.BuiltinMs, multi.ParallelMs)
	}
	var buf bytes.Buffer
	RenderMR(&buf, rows)
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("render incomplete")
	}
}

func TestTaskFarmAblation(t *testing.T) {
	rows, err := TaskFarm(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	farm, single := rows[0], rows[1]
	// Task farming needs far fewer batch jobs for the same work.
	if farm.Jobs >= single.Jobs {
		t.Errorf("farm jobs %d >= single jobs %d", farm.Jobs, single.Jobs)
	}
	if farm.TasksDone == 0 || single.TasksDone == 0 {
		t.Error("no tasks completed")
	}
	var buf bytes.Buffer
	RenderTaskFarm(&buf, rows)
	if !strings.Contains(buf.String(), "task farming") {
		t.Error("render incomplete")
	}
}

func TestFireworksFeatures(t *testing.T) {
	r, err := FireworksFeatures(Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fireworks == 0 || r.Completed == 0 {
		t.Fatalf("result = %+v", r)
	}
	if r.Duplicates == 0 {
		t.Error("no duplicate completions at 30% redetermination rate")
	}
	if r.Reruns == 0 {
		t.Error("no re-runs with 2h walltimes")
	}
	var buf bytes.Buffer
	RenderFireworksFeatures(&buf, r)
	if !strings.Contains(buf.String(), "detours") {
		t.Error("render incomplete")
	}
}

func TestWeekStats(t *testing.T) {
	r, err := WeekStats(Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.Queries != Small.Queries {
		t.Errorf("queries = %d", r.Queries)
	}
	if r.Records <= r.Queries/10 {
		t.Errorf("records = %d for %d queries; workload too thin", r.Records, r.Queries)
	}
}

func TestSortedKinds(t *testing.T) {
	out := SortedKinds(map[string]int{"b": 2, "a": 1})
	if out != "a=1 b=2" {
		t.Errorf("out = %q", out)
	}
}
