package experiments

import (
	"io"
	"net/http"
)

func newAuthedRequest(uri, key string) (*http.Request, error) {
	req, err := http.NewRequest(http.MethodGet, uri, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-API-KEY", key)
	return req, nil
}

func doRequest(req *http.Request) (*httpResult, error) {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &httpResult{status: resp.StatusCode, body: string(body)}, nil
}
