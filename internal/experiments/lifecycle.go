package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/dft"
	"matproj/internal/document"
	"matproj/internal/fireworks"
	"matproj/internal/hpc"
	"matproj/internal/icsd"
	"matproj/internal/pipeline"
	"matproj/internal/restapi"
	"matproj/internal/sandbox"
)

// --- Fig. 3: the envisioned discovery workflow ----------------------------

// Fig3Step records one stage (a–f) of the discovery lifecycle.
type Fig3Step struct {
	Stage string
	Label string
	Info  string
}

// Fig3 walks a user's idea through the full lifecycle: (a) idea,
// (b) MPS records, (c) computation, (d) sandbox, (e) analysis,
// (f) public release.
func Fig3(sc Scale) ([]Fig3Step, error) {
	var steps []Fig3Step
	d, err := pipeline.Build(pipelineConfig(sc))
	if err != nil {
		return nil, err
	}
	steps = append(steps, Fig3Step{"a", "ideas", "user mines the core DB for Li-containing frameworks"})

	// (b) candidate materials serialized as MPS records.
	recs := icsd.GenerateBatteryFrameworks(777, 3)
	mps := d.Store.C("mps")
	var fws []fireworks.Firework
	for i, r := range recs {
		r.ID = fmt.Sprintf("mps-user-%03d", i)
		r.CreatedBy = "alice"
		r.Source = "user"
		mdoc := r.ToDoc()
		if _, err := mps.Insert(mdoc); err != nil {
			return nil, err
		}
		fws = append(fws, fireworks.NewVASPFirework(mdoc, "relax", dft.DefaultParams(), 12*time.Hour))
	}
	steps = append(steps, Fig3Step{"b", "MPS records", fmt.Sprintf("%d user candidates serialized", len(recs))})

	// (c) computation through the workflow engine.
	if _, err := d.Pad.AddWorkflow(fws); err != nil {
		return nil, err
	}
	cluster := hpc.NewCluster(4, 0, hpc.Policy{})
	if _, err := fireworks.DriveCluster(d.Pad, fireworks.NewVASPAssembler(d.Store), cluster,
		"alice", 2, 24*time.Hour, nil); err != nil {
		return nil, err
	}
	steps = append(steps, Fig3Step{"c", "computation", fmt.Sprintf("workflow ran %v of virtual compute", cluster.Now().Round(time.Minute))})

	// (d) results land in a private sandbox.
	sb := sandbox.New(d.Store, "materials")
	sbID, err := sb.Create("alice-batteries", "alice")
	if err != nil {
		return nil, err
	}
	var sandboxed []string
	for _, r := range recs {
		task, err := d.Store.C("tasks").FindOne(document.D{"result.mps_id": r.ID, "state": "successful"}, nil)
		if err != nil {
			continue
		}
		id, err := sb.Submit(sbID, "alice", document.D{
			"pretty_formula": task.GetString("result.formula"),
			"final_energy":   task["result"].(map[string]any)["final_energy"],
			"mps_id":         r.ID,
		})
		if err != nil {
			return nil, err
		}
		sandboxed = append(sandboxed, id)
	}
	steps = append(steps, Fig3Step{"d", "sandbox", fmt.Sprintf("%d results private to alice + collaborators", len(sandboxed))})

	// (e) analysis with the open analytics library.
	stable := 0
	for _, r := range recs {
		comp := r.Structure.Composition()
		if comp.ChargeBalanced() {
			stable++
		}
	}
	steps = append(steps, Fig3Step{"e", "analysis", fmt.Sprintf("%d/%d candidates pass the stability screen", stable, len(recs))})

	// (f) public release.
	released := 0
	for _, id := range sandboxed {
		if _, err := sb.Release(sbID, "alice", id); err == nil {
			released++
		}
	}
	steps = append(steps, Fig3Step{"f", "public release", fmt.Sprintf("%d materials released to the core DB", released)})
	return steps, nil
}

// RenderFig3 prints the lifecycle.
func RenderFig3(w io.Writer, steps []Fig3Step) {
	fmt.Fprintf(w, "Fig. 3: envisioned materials discovery workflow\n")
	for _, s := range steps {
		fmt.Fprintf(w, "  (%s) %-15s %s\n", s.Stage, s.Label, s.Info)
	}
}

// --- Fig. 4: Materials API URI --------------------------------------------

// Fig4Result records the canonical API exchange.
type Fig4Result struct {
	URI      string
	Status   int
	Body     string
	Energy   float64
	Material string
}

// Fig4 stands up the real HTTP server over a built deployment and issues
// the paper's example request: the energy of ferric oxide (Fe2O3). When
// the deployment contains no Fe-O binary (a small synthetic corpus may
// not), the first available formula substitutes — the URI anatomy under
// test is the same.
func Fig4(sc Scale) (*Fig4Result, error) {
	d, err := pipeline.Build(pipelineConfig(sc))
	if err != nil {
		return nil, err
	}
	auth := restapi.NewAuth(d.Store)
	key, err := auth.Signup("google", "fig4@example.com")
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(restapi.NewServer(d.Engine, auth, d.Store))
	defer srv.Close()

	formula := "Fe2O3"
	if _, err := d.Store.C("materials").FindOne(document.D{"pretty_formula": formula}, nil); err != nil {
		first, err := d.Store.C("materials").FindOne(nil, nil)
		if err != nil {
			return nil, err
		}
		formula = first.GetString("pretty_formula")
	}
	uri := srv.URL + "/rest/v1/materials/" + formula + "/vasp/energy"
	resp, err := httpGet(uri, key)
	if err != nil {
		return nil, err
	}
	out := &Fig4Result{URI: "/rest/v1/materials/" + formula + "/vasp/energy", Status: resp.status, Body: resp.body}
	var env struct {
		Valid    bool             `json:"valid_response"`
		Response []map[string]any `json:"response"`
	}
	if err := json.Unmarshal([]byte(resp.body), &env); err != nil {
		return nil, err
	}
	if env.Valid && len(env.Response) > 0 {
		if e, ok := env.Response[0]["energy"].(float64); ok {
			out.Energy = e
		}
		if m, ok := env.Response[0]["material_id"].(string); ok {
			out.Material = m
		}
	}
	return out, nil
}

// RenderFig4 prints the URI anatomy and the live response.
func RenderFig4(w io.Writer, r *Fig4Result) {
	fmt.Fprintf(w, "Fig. 4: Materials API URI anatomy\n")
	fmt.Fprintf(w, "  preamble /rest | version v1 | application id | datatype vasp | property energy\n")
	fmt.Fprintf(w, "  GET %s -> HTTP %d\n", r.URI, r.Status)
	fmt.Fprintf(w, "  material %s energy %.4f eV\n", r.Material, r.Energy)
	fmt.Fprintf(w, "  raw: %s\n", r.Body)
}

// --- §IV-A1: task farming ablation ----------------------------------------

// TaskFarmRow compares execution modes under a batch-queue limit.
type TaskFarmRow struct {
	Mode        string
	Jobs        int
	TasksDone   int
	MakespanH   float64
	Utilization float64
}

// TaskFarm runs identical firework loads on a queue-limited cluster in
// the two §IV-A1 execution modes: task farming (a handful of long jobs,
// each pulling many calculations) versus one calculation per batch job
// (many small jobs fighting the queue limit).
func TaskFarm(sc Scale) ([]TaskFarmRow, error) {
	const nodes, queueLimit = 8, 4
	newLoad := func() (*fireworks.LaunchPad, fireworks.Assembler, error) {
		store := datastore.MustOpenMemory()
		pad := fireworks.NewLaunchPad(store, 5)
		fireworks.RegisterVASP(pad)
		mps := store.C("mps")
		var fws []fireworks.Firework
		for _, r := range icsd.Generate(icsd.Config{Seed: 4242, DuplicateRate: 0}, sc.Materials) {
			mdoc := r.ToDoc()
			if _, err := mps.Insert(mdoc); err != nil {
				return nil, nil, err
			}
			fws = append(fws, fireworks.NewVASPFirework(mdoc, "relax", dft.DefaultParams(), 12*time.Hour))
		}
		if _, err := pad.AddWorkflow(fws); err != nil {
			return nil, nil, err
		}
		return pad, fireworks.NewVASPAssembler(store), nil
	}

	// Mode A: task farming via the production driver.
	padA, asmA, err := newLoad()
	if err != nil {
		return nil, err
	}
	clusterA := hpc.NewCluster(nodes, queueLimit, hpc.Policy{})
	jobsA, err := fireworks.DriveCluster(padA, asmA, clusterA, "u", queueLimit, 1000*time.Hour, nil)
	if err != nil {
		return nil, err
	}
	farmRow := farmRowFrom("task farming", jobsA, clusterA, nodes)

	// Mode B: one calculation per batch job, resubmitting as the queue
	// limit allows.
	padB, asmB, err := newLoad()
	if err != nil {
		return nil, err
	}
	clusterB := hpc.NewCluster(nodes, queueLimit, hpc.Policy{})
	jobsB := 0
	for round := 0; round < 100000; round++ {
		submitted := false
		for padB.ReadyCount() > clusterB.QueuedOrRunning("u") {
			rocket := &fireworks.Rocket{
				Pad: padB, Assembler: asmB,
				WorkerID:  fmt.Sprintf("single-%d", jobsB),
				MaxClaims: 1,
			}
			err := clusterB.Submit(&hpc.Job{
				ID: fmt.Sprintf("one-%d", jobsB), User: "u",
				Walltime: 12 * time.Hour, Source: rocket.TaskSource(),
			})
			if err != nil {
				break
			}
			jobsB++
			submitted = true
		}
		if !clusterB.Step() && !submitted {
			break
		}
	}
	clusterB.RunAll()
	singleRow := farmRowFrom("single-task jobs", jobsB, clusterB, nodes)
	return []TaskFarmRow{farmRow, singleRow}, nil
}

// farmRowFrom summarizes a finished cluster run.
func farmRowFrom(mode string, jobs int, c *hpc.Cluster, nodes int) TaskFarmRow {
	st := c.Stats()
	util := 0.0
	if st.Makespan > 0 {
		util = float64(st.BusyTime) / (float64(st.Makespan) * float64(nodes))
	}
	return TaskFarmRow{
		Mode:        mode,
		Jobs:        jobs,
		TasksDone:   st.TasksDone,
		MakespanH:   st.Makespan.Hours(),
		Utilization: util,
	}
}

// RenderTaskFarm prints the ablation table.
func RenderTaskFarm(w io.Writer, rows []TaskFarmRow) {
	fmt.Fprintf(w, "§IV-A1: task farming under a per-user queue limit\n")
	fmt.Fprintf(w, "%-18s %8s %10s %12s %12s\n", "mode", "jobs", "tasks", "makespan h", "utilization")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %8d %10d %12.1f %11.0f%%\n", r.Mode, r.Jobs, r.TasksDone, r.MakespanH, r.Utilization*100)
	}
}

// --- §III-C3: FireWorks feature accounting ---------------------------------

// FireworksFeatures counts how often each recovery mechanism fired in a
// failure-heavy pipeline run.
type FireworksFeaturesResult struct {
	Fireworks  int
	Completed  int
	Reruns     int
	Detours    int
	Duplicates int
	Defused    int
	Iterations int
}

// FireworksFeatures runs a deliberately hostile configuration (short
// walltimes, duplicate-rich inputs) and tallies re-runs, detours,
// duplicate hits, and iteration depth.
func FireworksFeatures(sc Scale) (*FireworksFeaturesResult, error) {
	cfg := pipelineConfig(sc)
	cfg.SkipDerived = true
	cfg.DuplicateRate = 0.3
	cfg.JobWalltime = 30 * time.Minute // provoke walltime kills
	d, err := pipeline.Build(cfg)
	if err != nil {
		return nil, err
	}
	engines := d.Store.C(fireworks.EnginesCollection)
	res := &FireworksFeaturesResult{}
	res.Fireworks, _ = engines.Count(nil)
	res.Completed, _ = engines.Count(document.D{"state": string(fireworks.StateCompleted)})
	res.Defused, _ = engines.Count(document.D{"state": string(fireworks.StateDefused)})
	res.Detours, _ = engines.Count(document.D{"detour_of": document.D{"$exists": true}})
	res.Duplicates, _ = engines.Count(document.D{"output.duplicate_of": document.D{"$exists": true}})
	rerunDocs, _ := engines.FindAll(document.D{"reruns": document.D{"$gte": 1}}, nil)
	for _, fw := range rerunDocs {
		n, _ := fw.GetInt("reruns")
		res.Reruns += int(n)
	}
	iterDocs, _ := engines.FindAll(document.D{"stage.iteration": document.D{"$gte": 1}}, nil)
	res.Iterations = len(iterDocs)
	return res, nil
}

// RenderFireworksFeatures prints the accounting.
func RenderFireworksFeatures(w io.Writer, r *FireworksFeaturesResult) {
	fmt.Fprintf(w, "§III-C3: FireWorks unique features under a hostile run\n")
	fmt.Fprintf(w, "  fireworks   %5d\n", r.Fireworks)
	fmt.Fprintf(w, "  completed   %5d\n", r.Completed)
	fmt.Fprintf(w, "  re-runs     %5d (walltime/non-convergence recoveries)\n", r.Reruns)
	fmt.Fprintf(w, "  detours     %5d (ZBRENT parameter tweaks)\n", r.Detours)
	fmt.Fprintf(w, "  duplicates  %5d (binder pointer completions)\n", r.Duplicates)
	fmt.Fprintf(w, "  iterations  %5d\n", r.Iterations)
	fmt.Fprintf(w, "  defused     %5d (manual intervention)\n", r.Defused)
}

// --- tiny HTTP helper -------------------------------------------------------

type httpResult struct {
	status int
	body   string
}

func httpGet(uri, key string) (*httpResult, error) {
	req, err := newAuthedRequest(uri, key)
	if err != nil {
		return nil, err
	}
	resp, err := doRequest(req)
	if err != nil {
		return nil, err
	}
	return resp, nil
}
