// Package experiments regenerates every table and figure of the paper's
// evaluation from the reproduction's own pipeline. Each function returns
// a printable result; cmd/mpbench renders them and the root benchmarks
// time them. DESIGN.md maps each experiment to the modules involved;
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"matproj/internal/analysis"
	"matproj/internal/builder"
	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/mapreduce"
	"matproj/internal/pipeline"
	"matproj/internal/stats"
	"matproj/internal/webload"
)

// Scale controls how big each experiment runs. Tests use Small; mpbench
// defaults to Full.
type Scale struct {
	Materials int // pipeline size for Table I / Fig 2 / Fig 5
	Queries   int // Fig 5 replay length
	MRDocs    int // documents in the MapReduce comparison
	Batteries int // frameworks screened for Fig 1
}

// Small is the quick-test scale.
var Small = Scale{Materials: 30, Queries: 300, MRDocs: 2000, Batteries: 30}

// Full is the report scale used by mpbench.
var Full = Scale{Materials: 200, Queries: 3315, MRDocs: 20000, Batteries: 150}

// --- Table I ------------------------------------------------------------

// TableIRow characterizes one collection's document structure.
type TableIRow struct {
	Collection string
	Stats      document.Stats
}

// TableI builds a real deployment and measures the structural complexity
// of the paper's four collections: battery prototypes, MPS, materials,
// and tasks. The paper's ordering (tasks deepest and largest, then
// materials, then MPS, then battery prototypes) must reproduce.
func TableI(sc Scale) ([]TableIRow, error) {
	d, err := pipeline.Build(pipelineConfig(sc))
	if err != nil {
		return nil, err
	}
	collections := []struct {
		label string
		name  string
	}{
		{"Battery prototypes", "batteries"},
		{"Materials Project Source (MPS)", "mps"},
		{"Materials", "materials"},
		{"Tasks", "tasks"},
	}
	var rows []TableIRow
	for _, c := range collections {
		docs, err := d.Store.C(c.name).FindAll(nil, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIRow{Collection: c.label, Stats: document.MeasureAll(docs)})
	}
	return rows, nil
}

// RenderTableI prints rows in the paper's Table I format.
func RenderTableI(w io.Writer, rows []TableIRow) {
	fmt.Fprintf(w, "TABLE I: Complexity and structure of selected collections\n")
	fmt.Fprintf(w, "%-34s %8s %7s %11s\n", "Collection", "Nodes", "Depth", "Mean depth")
	for _, r := range rows {
		fmt.Fprintf(w, "%-34s %8d %7d %11.1f\n", r.Collection, r.Stats.Nodes, r.Stats.Depth, r.Stats.MeanDepth)
	}
}

// --- Fig. 1 -------------------------------------------------------------

// Fig1Result holds the screened candidates and the known-materials band.
type Fig1Result struct {
	Candidates []analysis.BatteryCandidate
	Known      []analysis.BatteryCandidate
}

// Fig1 screens synthetic battery frameworks for voltage and capacity.
func Fig1(sc Scale) (*Fig1Result, error) {
	cands, err := pipeline.BatteryScreen(2012, sc.Batteries)
	if err != nil {
		return nil, err
	}
	return &Fig1Result{Candidates: cands, Known: analysis.KnownElectrodes()}, nil
}

// RenderFig1 prints the scatter series plus an ASCII plot.
func RenderFig1(w io.Writer, r *Fig1Result) {
	fmt.Fprintf(w, "Fig. 1: Battery materials screened (voltage vs capacity)\n")
	fmt.Fprintf(w, "# series: candidates (%d points), known (%d points)\n", len(r.Candidates), len(r.Known))
	fmt.Fprintf(w, "%-18s %-4s %9s %12s %14s\n", "formula", "ion", "V (V)", "C (mAh/g)", "E (Wh/kg)")
	for _, c := range r.Candidates {
		fmt.Fprintf(w, "%-18s %-4s %9.2f %12.1f %14.1f\n", c.Formula, c.Ion, c.Voltage, c.Capacity, c.SpecificEnergy)
	}
	fmt.Fprintln(w, "# known materials band:")
	for _, c := range r.Known {
		fmt.Fprintf(w, "%-18s %-4s %9.2f %12.1f %14.1f\n", c.Formula, c.Ion, c.Voltage, c.Capacity, c.SpecificEnergy)
	}
	fmt.Fprint(w, asciiScatter(r))
}

// asciiScatter draws candidates (.) and known materials (K) on a
// voltage/capacity grid.
func asciiScatter(r *Fig1Result) string {
	const rows, cols = 16, 60
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	plot := func(v, c float64, ch byte) {
		// voltage 0-6 V on y, capacity 0-600 mAh/g on x.
		y := rows - 1 - int(v/6*float64(rows))
		x := int(c / 600 * float64(cols))
		if y < 0 {
			y = 0
		}
		if y >= rows {
			y = rows - 1
		}
		if x < 0 {
			x = 0
		}
		if x >= cols {
			x = cols - 1
		}
		grid[y][x] = ch
	}
	for _, c := range r.Candidates {
		plot(c.Voltage, c.Capacity, '.')
	}
	for _, c := range r.Known {
		plot(c.Voltage, c.Capacity, 'K')
	}
	var b strings.Builder
	b.WriteString("V(6..0) | capacity 0..600 mAh/g  ('.'=candidate, 'K'=known)\n")
	for _, row := range grid {
		b.WriteString("|" + string(row) + "|\n")
	}
	return b.String()
}

// --- Fig. 2 -------------------------------------------------------------

// Fig2Result shows the one datastore serving its four roles.
type Fig2Result struct {
	WorkflowOps     uint64 // parallel computation: engine claims/updates
	AnalyticsGroups int    // data analytics: MapReduce groups computed
	VVChecks        int    // data V&V: checks run
	VVViolations    int
	WebQueries      int // dissemination: queries served
	WebRecords      int
	Collections     []string
}

// Fig2 builds one deployment and exercises all four architectural roles
// against the same store.
func Fig2(sc Scale) (*Fig2Result, error) {
	d, err := pipeline.Build(pipelineConfig(sc))
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{}

	// Role 1 (parallel computation) already ran during Build; its
	// footprint is the profiler ops against engines/tasks.
	ops, _ := d.Store.Profiler().Totals()
	res.WorkflowOps = ops

	// Role 2: analytics — group tasks by formula via MapReduce.
	groups, err := mapreduce.RunCollection(d.Store.C("tasks"), nil,
		func(t document.D, emit func(string, any)) {
			if f := t.GetString("result.formula"); f != "" {
				emit(f, int64(1))
			}
		},
		func(_ string, vs []any) any {
			var n int64
			for _, v := range vs {
				i, _ := v.(int64)
				n += i
			}
			return n
		}, mapreduce.Config{})
	if err != nil {
		return nil, err
	}
	res.AnalyticsGroups = len(groups)

	// Role 3: V&V.
	runner := &builder.Runner{Store: d.Store}
	checks := builder.StandardChecks(d.Store)
	violations, err := runner.RunChecks(checks)
	if err != nil {
		return nil, err
	}
	res.VVChecks = len(checks)
	res.VVViolations = len(violations)

	// Role 4: dissemination — replay a web workload.
	gen, err := webload.NewGenerator(7, d.Store.C("materials"))
	if err != nil {
		return nil, err
	}
	samples, records, err := webload.Replay(gen, d.Engine, "materials", sc.Queries/3)
	if err != nil {
		return nil, err
	}
	res.WebQueries = len(samples)
	res.WebRecords = records
	res.Collections = d.Store.Collections()
	return res, nil
}

// RenderFig2 prints the four-role summary.
func RenderFig2(w io.Writer, r *Fig2Result) {
	fmt.Fprintf(w, "Fig. 2: one datastore serving four roles\n")
	fmt.Fprintf(w, "  collections in the single store : %v\n", r.Collections)
	fmt.Fprintf(w, "  [parallel computation] store ops : %d\n", r.WorkflowOps)
	fmt.Fprintf(w, "  [data analytics]  MR groups      : %d\n", r.AnalyticsGroups)
	fmt.Fprintf(w, "  [data V&V]        checks run     : %d (violations: %d)\n", r.VVChecks, r.VVViolations)
	fmt.Fprintf(w, "  [dissemination]   queries served : %d (records: %d)\n", r.WebQueries, r.WebRecords)
}

// --- Fig. 5 -------------------------------------------------------------

// Fig5Result holds the replayed query-latency distribution.
type Fig5Result struct {
	Summary    stats.Summary // milliseconds
	Histogram  *stats.Histogram
	TimeSeries []webload.Sample
	Records    int
}

// Fig5 builds a deployment and replays a portal workload, measuring
// per-query latency.
func Fig5(sc Scale) (*Fig5Result, error) {
	d, err := pipeline.Build(pipelineConfig(sc))
	if err != nil {
		return nil, err
	}
	gen, err := webload.NewGenerator(2012, d.Store.C("materials"))
	if err != nil {
		return nil, err
	}
	samples, records, err := webload.Replay(gen, d.Engine, "materials", sc.Queries)
	if err != nil {
		return nil, err
	}
	lat := make([]time.Duration, len(samples))
	for i, s := range samples {
		lat[i] = s.Latency
	}
	ms := stats.DurationsToMillis(lat)
	hist := stats.NewHistogram(0.001, 1000, 12)
	for _, v := range ms {
		hist.Add(v)
	}
	return &Fig5Result{
		Summary:    stats.Summarize(ms),
		Histogram:  hist,
		TimeSeries: samples,
		Records:    records,
	}, nil
}

// RenderFig5 prints the histogram and the time-series inset.
func RenderFig5(w io.Writer, r *Fig5Result) {
	fmt.Fprintf(w, "Fig. 5: query latency histogram (%d queries, %d records returned)\n", r.Summary.N, r.Records)
	fmt.Fprintf(w, "  mean %.3f ms  p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  max %.3f ms\n",
		r.Summary.Mean, r.Summary.P50, r.Summary.P90, r.Summary.P99, r.Summary.Max)
	fmt.Fprint(w, r.Histogram.Render("ms", 48))
	fmt.Fprintln(w, "inset: time series (last 40 queries, ms):")
	tail := r.TimeSeries
	if len(tail) > 40 {
		tail = tail[len(tail)-40:]
	}
	for _, s := range tail {
		fmt.Fprintf(w, "  q%05d %-9s %8.3f\n", s.Seq, s.Kind, float64(s.Latency)/float64(time.Millisecond))
	}
}

// --- §IV-B2: built-in vs parallel MapReduce ------------------------------

// MRRow is one row of the MapReduce comparison.
type MRRow struct {
	Docs       int
	Workers    int
	BuiltinMs  float64
	ParallelMs float64
	Speedup    float64
}

// MapReduceComparison times the same grouping job (tasks → best result
// per material) on the built-in single-threaded engine and the parallel
// engine across worker counts.
func MapReduceComparison(sc Scale, workerCounts []int) ([]MRRow, error) {
	store := datastore.MustOpenMemory()
	tasks := store.C("tasks")
	for i := 0; i < sc.MRDocs; i++ {
		_, err := tasks.Insert(document.D{
			"state": "successful",
			"stage": map[string]any{"structure_id": fmt.Sprintf("s%05d", i%(sc.MRDocs/8+1))},
			"result": map[string]any{
				"mps_id":          fmt.Sprintf("mps-%05d", i%(sc.MRDocs/8+1)),
				"final_energy":    -float64(i%37) - 1,
				"energy_per_atom": -1.5,
				"formula":         "Fe2O3",
				"functional":      "GGA",
			},
		})
		if err != nil {
			return nil, err
		}
	}
	mapper := func(t document.D, emit func(string, any)) {
		if t.GetString("state") != "successful" {
			return
		}
		e, _ := t.GetFloat("result.final_energy")
		emit(t.GetString("stage.structure_id"), e)
	}
	reducer := func(_ string, vs []any) any {
		best, _ := document.AsFloat(vs[0])
		for _, v := range vs[1:] {
			f, _ := document.AsFloat(v)
			if f < best {
				best = f
			}
		}
		return best
	}

	start := time.Now()
	if _, err := tasks.MapReduce(nil, mapper, reducer); err != nil {
		return nil, err
	}
	builtinMs := float64(time.Since(start)) / float64(time.Millisecond)

	var rows []MRRow
	for _, wkrs := range workerCounts {
		start = time.Now()
		if _, err := mapreduce.RunCollection(tasks, nil, mapper, reducer,
			mapreduce.Config{MapWorkers: wkrs}); err != nil {
			return nil, err
		}
		parMs := float64(time.Since(start)) / float64(time.Millisecond)
		speedup := 0.0
		if parMs > 0 {
			speedup = builtinMs / parMs
		}
		rows = append(rows, MRRow{Docs: sc.MRDocs, Workers: wkrs, BuiltinMs: builtinMs, ParallelMs: parMs, Speedup: speedup})
	}
	return rows, nil
}

// RenderMR prints the comparison table.
func RenderMR(w io.Writer, rows []MRRow) {
	fmt.Fprintf(w, "§IV-B2: built-in (single-threaded) vs parallel MapReduce\n")
	fmt.Fprintf(w, "%8s %8s %12s %12s %9s\n", "docs", "workers", "builtin ms", "parallel ms", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8d %12.2f %12.2f %8.1fx\n", r.Docs, r.Workers, r.BuiltinMs, r.ParallelMs, r.Speedup)
	}
}

// --- Week stats (§III intro numbers) -------------------------------------

// WeekStats replays a "week" of traffic and reports the paper-style
// accounting: distinct queries and total records returned.
type WeekStatsResult struct {
	Queries int
	Records int
}

// WeekStats reproduces the bookkeeping behind "3315 distinct queries
// returning a total of 12,951,099 records".
func WeekStats(sc Scale) (*WeekStatsResult, error) {
	d, err := pipeline.Build(pipelineConfig(sc))
	if err != nil {
		return nil, err
	}
	gen, err := webload.NewGenerator(820, d.Store.C("materials"))
	if err != nil {
		return nil, err
	}
	samples, records, err := webload.Replay(gen, d.Engine, "materials", sc.Queries)
	if err != nil {
		return nil, err
	}
	return &WeekStatsResult{Queries: len(samples), Records: records}, nil
}

// --- helpers --------------------------------------------------------------

func pipelineConfig(sc Scale) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.NMaterials = sc.Materials
	return cfg
}

// SortedKinds renders a kind-count map deterministically (helper for
// mpbench output).
func SortedKinds(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}
