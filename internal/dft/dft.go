// Package dft is a synthetic density-functional-theory code standing in
// for VASP, which is proprietary (§III-C1). It does not solve the
// Schrödinger equation; it reproduces the *system-level behaviour* of a
// plane-wave DFT code that the Materials Project infrastructure exists to
// manage:
//
//   - an iterative SCF loop whose convergence depends on structure
//     "difficulty" and on key parameters (ENCUT, EDIFF, NELM, ALGO),
//     with no parameter set that works for every crystal;
//   - highly variable runtimes (minutes to days of virtual time) that are
//     hard to predict in advance;
//   - characteristic failure modes: hard errors that require a small
//     input change and resubmission (detours), runs that exceed their
//     walltime (re-runs), and runs that simply fail to converge
//     (iteration with escalated parameters);
//   - several MB-scale intermediate text output (an OUTCAR analogue)
//     that must be parsed and reduced before loading into the datastore.
//
// The energy model is a deterministic electronegativity-based cohesive
// model chosen so that derived quantities — battery voltages, formation
// energies, band gaps — land in physically plausible ranges and
// reproduce the *shape* of the paper's Fig. 1.
package dft

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"matproj/internal/crystal"
)

// Params are the run parameters — the "several key parameters" of the
// paper's iterative algorithms.
type Params struct {
	Encut      float64 // plane-wave cutoff, eV
	KMesh      [3]int  // k-point mesh
	EDiff      float64 // SCF convergence criterion, eV
	NELM       int     // max SCF iterations
	Algo       string  // "Normal" | "Fast" | "All"
	Potim      float64 // ionic step scale; large values trigger ZBRENT errors on hard structures
	Functional string  // "GGA" | "GGA+U"
}

// DefaultParams mirrors a typical MP relaxation setup.
func DefaultParams() Params {
	return Params{
		Encut:      520,
		KMesh:      [3]int{4, 4, 4},
		EDiff:      1e-5,
		NELM:       60,
		Algo:       "Fast",
		Potim:      0.5,
		Functional: "GGA",
	}
}

// Validate rejects unusable parameter combinations.
func (p Params) Validate() error {
	if p.Encut < 100 || p.Encut > 2000 {
		return fmt.Errorf("dft: ENCUT %g outside [100, 2000]", p.Encut)
	}
	for _, k := range p.KMesh {
		if k < 1 || k > 32 {
			return fmt.Errorf("dft: k-mesh %v outside [1, 32]", p.KMesh)
		}
	}
	if p.EDiff <= 0 || p.EDiff > 1 {
		return fmt.Errorf("dft: EDIFF %g outside (0, 1]", p.EDiff)
	}
	if p.NELM < 1 || p.NELM > 10000 {
		return fmt.Errorf("dft: NELM %d outside [1, 10000]", p.NELM)
	}
	switch p.Algo {
	case "Normal", "Fast", "All":
	default:
		return fmt.Errorf("dft: unknown ALGO %q", p.Algo)
	}
	if p.Potim <= 0 || p.Potim > 5 {
		return fmt.Errorf("dft: POTIM %g outside (0, 5]", p.Potim)
	}
	switch p.Functional {
	case "GGA", "GGA+U":
	default:
		return fmt.Errorf("dft: unknown functional %q", p.Functional)
	}
	return nil
}

// FailureCode classifies how a run ended.
type FailureCode string

const (
	// OK means the run converged and produced results.
	OK FailureCode = ""
	// ErrZBrent is the classic VASP ionic-minimizer error; it goes away
	// when POTIM is reduced — the canonical "detour" in §III-C3.
	ErrZBrent FailureCode = "ZBRENT"
	// ErrNonConverged means the SCF loop hit NELM without meeting EDIFF;
	// fixed by raising NELM or switching ALGO — the "iteration" case.
	ErrNonConverged FailureCode = "NONCONV"
)

// Result is the reduced outcome of one simulated VASP run.
type Result struct {
	Code         FailureCode
	FinalEnergy  float64 // eV per cell (valid when Code == OK)
	EnergyPA     float64 // eV per atom
	Bandgap      float64 // eV
	SCFSteps     int
	MaxForce     float64       // eV/Å residual force
	Runtime      time.Duration // virtual wall time consumed
	Outcar       []byte        // raw intermediate output (parse & reduce before storing!)
	NKPoints     int
	ChargeDipole float64 // summary statistic of the charge density
	// SCFHistory holds the residual trajectory (downsampled to at most 30
	// points) — part of the "robust data about the output state" the
	// tasks collection keeps.
	SCFHistory []float64
	// Forces are the residual per-site forces (eV/Å).
	Forces [][3]float64
}

// Converged reports whether the run completed successfully.
func (r *Result) Converged() bool { return r.Code == OK }

// structureHash deterministically fingerprints a structure (composition +
// geometry), providing the per-crystal randomness of the simulator.
func structureHash(st *crystal.Structure) uint64 {
	h := fnv.New64a()
	for _, s := range st.Sites {
		fmt.Fprintf(h, "%s|%.6f,%.6f,%.6f;", s.Species, s.Frac[0], s.Frac[1], s.Frac[2])
	}
	m := st.Lattice.Matrix
	for i := 0; i < 3; i++ {
		fmt.Fprintf(h, "%.6f,%.6f,%.6f;", m[i][0], m[i][1], m[i][2])
	}
	return h.Sum64()
}

// hashFloat maps a hash and salt to a deterministic float in [0, 1).
func hashFloat(h uint64, salt string) float64 {
	f := fnv.New64a()
	fmt.Fprintf(f, "%d|%s", h, salt)
	return float64(f.Sum64()%1_000_000) / 1_000_000
}

// referenceEnergy is the per-atom elemental reference (eV). A smooth
// function of Z standing in for fitted elemental energies.
func referenceEnergy(sym string) float64 {
	e := crystal.MustElement(sym)
	return -1.5 - 0.02*float64(e.Z) - 1.2*math.Sin(float64(e.Z)/9)
}

// CohesiveEnergy returns the composition's total bonding energy (eV,
// negative is bound): an ionic model proportional to pairwise
// electronegativity differences, normalized by atom count so the result
// is extensive (doubling the cell doubles the energy). Exposed so
// analysis code can compute energies consistently (e.g. the Li-metal
// anode reference in the battery analyzer).
func CohesiveEnergy(comp crystal.Composition) float64 {
	const ionicScale = 2.0 // eV per unit electronegativity difference
	syms := comp.Elements()
	n := comp.NumAtoms()
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < len(syms); i++ {
		for j := i + 1; j < len(syms); j++ {
			ei, ej := crystal.MustElement(syms[i]), crystal.MustElement(syms[j])
			sum += comp[syms[i]] * comp[syms[j]] * math.Abs(ei.Electronegativity-ej.Electronegativity)
		}
	}
	return -ionicScale * sum / n
}

// ElementalEnergy returns the model total energy of the pure element
// (per atom): reference plus zero bonding.
func ElementalEnergy(sym string) float64 { return referenceEnergy(sym) }

// CompositionEnergy returns the model total energy of a composition
// (reference sum plus cohesive bonding), without any structure-specific
// polymorph term. This is the energy surface the conversion-battery
// analyzer evaluates reaction energies on.
func CompositionEnergy(comp crystal.Composition) float64 {
	var e float64
	for sym, n := range comp {
		e += referenceEnergy(sym) * n
	}
	return e + CohesiveEnergy(comp)
}

// exactEnergy is the infinite-cutoff model energy of a structure.
func exactEnergy(st *crystal.Structure) float64 {
	comp := st.Composition()
	var e float64
	for sym, n := range comp {
		e += referenceEnergy(sym) * n
	}
	e += CohesiveEnergy(comp)
	// Deterministic per-structure term: polymorphs of the same
	// composition differ by up to ~0.15 eV/atom.
	e += (hashFloat(structureHash(st), "poly") - 0.5) * 0.3 * comp.NumAtoms()
	return e
}

// difficulty in [0,1): how hard this structure's SCF is. Transition-metal
// and magnetic systems (mid-row 3d elements) are harder, plus a random
// per-structure component.
func difficulty(st *crystal.Structure) float64 {
	comp := st.Composition()
	hard := 0.0
	for _, sym := range []string{"Fe", "Mn", "Co", "Ni", "Cr", "V"} {
		if comp.Contains(sym) {
			hard += 0.15
		}
	}
	hard += hashFloat(structureHash(st), "difficulty") * 0.55
	if hard >= 0.95 {
		hard = 0.95
	}
	return hard
}

// Run executes the simulated DFT calculation. It returns an error only
// for invalid inputs; physical failures (ZBRENT, non-convergence) are
// reported in Result.Code, as a real code would report them in its output
// files.
func Run(st *crystal.Structure, p Params) (*Result, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	h := structureHash(st)
	comp := st.Composition()
	nElectrons := comp.NumElectrons()
	nk := p.KMesh[0] * p.KMesh[1] * p.KMesh[2]
	diff := difficulty(st)

	res := &Result{NKPoints: nk}

	// --- ZBRENT failure: hard structures with aggressive POTIM ---
	if hashFloat(h, "zbrent") < 0.12 && p.Potim > 0.3 {
		res.Code = ErrZBrent
		res.SCFSteps = 3 + int(hashFloat(h, "zsteps")*10)
		res.Runtime = runtimeFor(nElectrons, nk, res.SCFSteps)
		res.Outcar = renderOutcar(st, p, res, nil)
		return res, nil
	}

	// --- SCF loop ---
	// Residual decays geometrically; the rate depends on difficulty and
	// ALGO. "Fast" is quicker but diverges on very hard cases.
	rate := 0.45 + 0.5*diff
	switch p.Algo {
	case "Fast":
		rate -= 0.12
		if diff > 0.8 {
			rate = 1.02 // divergence: Fast fails on the hardest structures
		}
	case "All":
		rate -= 0.05
	}
	residual := 1.0 + 10*diff
	var history []float64
	steps := 0
	for residual > p.EDiff && steps < p.NELM {
		residual *= rate
		// Deterministic per-step wobble.
		residual *= 1 + 0.05*(hashFloat(h, fmt.Sprintf("s%d", steps))-0.5)
		history = append(history, residual)
		steps++
	}
	res.SCFSteps = steps
	res.Runtime = runtimeFor(nElectrons, nk, steps)

	if residual > p.EDiff {
		res.Code = ErrNonConverged
		res.Outcar = renderOutcar(st, p, res, history)
		return res, nil
	}

	// --- converged: compute energies ---
	// Finite-cutoff error decays exponentially in ENCUT; finite k-mesh
	// error decays in mesh density. Both push the energy above the exact
	// value (variational behaviour).
	exact := exactEnergy(st)
	cutoffErr := 2.2 * math.Exp(-p.Encut/180) * comp.NumAtoms()
	kErr := 0.4 / float64(nk) * comp.NumAtoms()
	if p.Functional == "GGA+U" {
		// +U shifts transition-metal oxides; the model applies a fixed
		// per-TM-atom correction.
		for _, sym := range []string{"Fe", "Mn", "Co", "Ni", "V", "Cr"} {
			exact -= 0.12 * comp.Get(sym)
		}
	}
	res.FinalEnergy = exact + cutoffErr + kErr
	res.EnergyPA = res.FinalEnergy / comp.NumAtoms()
	res.Bandgap = bandgapModel(comp, h)
	res.MaxForce = p.EDiff * 50 * (1 + diff)
	res.ChargeDipole = hashFloat(h, "dipole") * 0.8
	res.SCFHistory = downsample(history, 30)
	res.Forces = make([][3]float64, len(st.Sites))
	for i := range st.Sites {
		for j := 0; j < 3; j++ {
			res.Forces[i][j] = (hashFloat(h, fmt.Sprintf("f%d.%d", i, j)) - 0.5) * 2 * res.MaxForce
		}
	}
	res.Outcar = renderOutcar(st, p, res, history)
	return res, nil
}

// downsample keeps at most n evenly spaced points of a series.
func downsample(xs []float64, n int) []float64 {
	if len(xs) <= n {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = xs[i*len(xs)/n]
	}
	return out
}

// bandgapModel estimates a gap from the electronegativity spread: ionic
// compounds are insulators, intermetallics metals.
func bandgapModel(comp crystal.Composition, h uint64) float64 {
	syms := comp.Elements()
	if len(syms) < 2 {
		return 0
	}
	minChi, maxChi := math.Inf(1), math.Inf(-1)
	for _, s := range syms {
		chi := crystal.MustElement(s).Electronegativity
		if chi == 0 {
			continue
		}
		minChi = math.Min(minChi, chi)
		maxChi = math.Max(maxChi, chi)
	}
	if math.IsInf(minChi, 1) {
		return 0
	}
	gap := (maxChi-minChi)*2.2 - 1.8 + (hashFloat(h, "gap")-0.5)*0.8
	if gap < 0 {
		return 0
	}
	return gap
}

// runtimeFor models the virtual wall time of a run: cubic-ish scaling in
// electron count, linear in k-points and SCF steps. Constants are tuned
// so typical cells take minutes-to-hours and large ones days, matching
// the paper's "minutes to days" spread.
func runtimeFor(nElectrons float64, nk, steps int) time.Duration {
	if steps < 1 {
		steps = 1
	}
	seconds := 0.02 * math.Pow(nElectrons, 1.5) * float64(nk) * float64(steps) / 16
	return time.Duration(seconds * float64(time.Second))
}

// EstimateRuntime is the a-priori runtime guess a scheduler would make:
// correct in expectation but ignorant of the actual SCF step count, so
// individual runs can exceed it badly — the paper's "high degree of
// uncertainty" in runtime estimation.
func EstimateRuntime(st *crystal.Structure, p Params) time.Duration {
	nk := p.KMesh[0] * p.KMesh[1] * p.KMesh[2]
	return runtimeFor(st.Composition().NumElectrons(), nk, p.NELM/2)
}
