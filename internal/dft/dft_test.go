package dft

import (
	"math"
	"strings"
	"testing"
	"time"

	"matproj/internal/crystal"
	"matproj/internal/icsd"
)

func structureOf(formula string) *crystal.Structure {
	comp := crystal.MustParseFormula(formula)
	st := &crystal.Structure{Lattice: crystal.CubicLattice(5.5 + comp.NumAtoms()*0.3)}
	i := 0
	for _, sym := range comp.Elements() {
		for k := 0; k < int(comp[sym]); k++ {
			f := float64(i) * 0.13
			st.Sites = append(st.Sites, crystal.Site{
				Species: sym,
				Frac:    crystal.Vec3{math.Mod(f, 1), math.Mod(f*1.7, 1), math.Mod(f*2.3, 1)},
			})
			i++
		}
	}
	return st
}

func TestRunDeterministic(t *testing.T) {
	st := structureOf("NaCl")
	p := DefaultParams()
	a, err := Run(st, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(st, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalEnergy != b.FinalEnergy || a.SCFSteps != b.SCFSteps || a.Code != b.Code {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestRunValidation(t *testing.T) {
	st := structureOf("NaCl")
	bad := []Params{
		{Encut: 50, KMesh: [3]int{4, 4, 4}, EDiff: 1e-5, NELM: 60, Algo: "Fast", Potim: 0.5, Functional: "GGA"},
		{Encut: 520, KMesh: [3]int{0, 4, 4}, EDiff: 1e-5, NELM: 60, Algo: "Fast", Potim: 0.5, Functional: "GGA"},
		{Encut: 520, KMesh: [3]int{4, 4, 4}, EDiff: 0, NELM: 60, Algo: "Fast", Potim: 0.5, Functional: "GGA"},
		{Encut: 520, KMesh: [3]int{4, 4, 4}, EDiff: 1e-5, NELM: 0, Algo: "Fast", Potim: 0.5, Functional: "GGA"},
		{Encut: 520, KMesh: [3]int{4, 4, 4}, EDiff: 1e-5, NELM: 60, Algo: "Bogus", Potim: 0.5, Functional: "GGA"},
		{Encut: 520, KMesh: [3]int{4, 4, 4}, EDiff: 1e-5, NELM: 60, Algo: "Fast", Potim: 0, Functional: "GGA"},
		{Encut: 520, KMesh: [3]int{4, 4, 4}, EDiff: 1e-5, NELM: 60, Algo: "Fast", Potim: 0.5, Functional: "LDA"},
	}
	for i, p := range bad {
		if _, err := Run(st, p); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
	if _, err := Run(&crystal.Structure{}, DefaultParams()); err == nil {
		t.Error("empty structure accepted")
	}
}

func TestEnergyConvergesWithEncut(t *testing.T) {
	st := structureOf("Fe2O3")
	var prev float64
	first := true
	var energies []float64
	for _, encut := range []float64{200, 320, 520, 800, 1200} {
		p := DefaultParams()
		p.Encut = encut
		p.Potim = 0.2 // avoid ZBRENT
		p.NELM = 500
		p.Algo = "Normal"
		res, err := Run(st, p)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged() {
			t.Fatalf("ENCUT %g did not converge: %s", encut, res.Code)
		}
		if !first && res.FinalEnergy >= prev {
			t.Errorf("energy did not decrease: ENCUT %g gives %f >= %f", encut, res.FinalEnergy, prev)
		}
		prev = res.FinalEnergy
		first = false
		energies = append(energies, res.FinalEnergy)
	}
	// Successive differences shrink (convergence).
	d1 := energies[1] - energies[0]
	dLast := energies[len(energies)-1] - energies[len(energies)-2]
	if math.Abs(dLast) >= math.Abs(d1) {
		t.Errorf("not converging: first delta %g, last delta %g", d1, dLast)
	}
}

func TestDenserKMeshLowersEnergy(t *testing.T) {
	st := structureOf("NaCl")
	p := DefaultParams()
	p.Potim = 0.2
	p.Algo = "Normal"
	p.NELM = 500
	coarse, _ := Run(st, p)
	p.KMesh = [3]int{8, 8, 8}
	fine, _ := Run(st, p)
	if !coarse.Converged() || !fine.Converged() {
		t.Fatal("runs did not converge")
	}
	if fine.FinalEnergy >= coarse.FinalEnergy {
		t.Errorf("denser mesh energy %f >= coarse %f", fine.FinalEnergy, coarse.FinalEnergy)
	}
	if fine.Runtime <= coarse.Runtime {
		t.Errorf("denser mesh should cost more time: %v vs %v", fine.Runtime, coarse.Runtime)
	}
}

func TestZBrentDetourFixedBySmallerPotim(t *testing.T) {
	// Find a structure that hits ZBRENT with default POTIM.
	recs := icsd.Generate(icsd.Config{Seed: 99, DuplicateRate: 0}, 300)
	p := DefaultParams()
	p.NELM = 2000
	p.Algo = "Normal"
	var failed *crystal.Structure
	for _, r := range recs {
		res, err := Run(r.Structure, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Code == ErrZBrent {
			failed = r.Structure
			break
		}
	}
	if failed == nil {
		t.Fatal("no ZBRENT failure in 300 structures; failure injection broken")
	}
	// The canonical detour: same job, smaller POTIM.
	p.Potim = 0.25
	res, err := Run(failed, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code == ErrZBrent {
		t.Error("reduced POTIM did not clear ZBRENT")
	}
}

func TestNonConvergenceFixedByMoreStepsOrAlgo(t *testing.T) {
	recs := icsd.Generate(icsd.Config{Seed: 123, DuplicateRate: 0}, 400)
	p := DefaultParams()
	p.Potim = 0.2
	p.NELM = 25 // tight budget to provoke NONCONV
	var hard *crystal.Structure
	for _, r := range recs {
		res, err := Run(r.Structure, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Code == ErrNonConverged {
			hard = r.Structure
			break
		}
	}
	if hard == nil {
		t.Fatal("no non-converged run found")
	}
	// Iteration: double NELM and/or switch algorithm until it converges.
	p2 := p
	p2.Algo = "Normal"
	p2.NELM = 4000
	res, err := Run(hard, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged() {
		t.Errorf("escalated params still failed: %s after %d steps", res.Code, res.SCFSteps)
	}
}

func TestRuntimeSpreadMinutesToDays(t *testing.T) {
	small := structureOf("LiF") // few electrons
	big := structureOf("Ba2U2O8")
	p := DefaultParams()
	p.Potim = 0.2
	p.Algo = "Normal"
	p.NELM = 1000
	rs, err := Run(small, p)
	if err != nil {
		t.Fatal(err)
	}
	p.KMesh = [3]int{12, 12, 12}
	rb, err := Run(big, p)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Runtime < 10*time.Second || rs.Runtime > 24*time.Hour {
		t.Errorf("small runtime = %v", rs.Runtime)
	}
	if rb.Runtime < rs.Runtime*10 {
		t.Errorf("big run (%v) should dwarf small (%v)", rb.Runtime, rs.Runtime)
	}
}

func TestEstimateRuntimeOrderOfMagnitude(t *testing.T) {
	st := structureOf("Fe2O3")
	p := DefaultParams()
	p.Potim = 0.2
	p.Algo = "Normal"
	p.NELM = 200
	res, err := Run(st, p)
	if err != nil || !res.Converged() {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	est := EstimateRuntime(st, p)
	ratio := float64(res.Runtime) / float64(est)
	if ratio <= 0 || ratio > 100 {
		t.Errorf("estimate wildly off: actual %v vs est %v", res.Runtime, est)
	}
}

func TestBandgapIonicVsMetallic(t *testing.T) {
	p := DefaultParams()
	p.Potim = 0.2
	p.Algo = "Normal"
	p.NELM = 2000
	ionic, err := Run(structureOf("LiF"), p) // Δχ = 3.0 → insulator
	if err != nil || !ionic.Converged() {
		t.Fatalf("ionic: %+v, %v", ionic, err)
	}
	if ionic.Bandgap < 1 {
		t.Errorf("LiF gap = %v, want insulating", ionic.Bandgap)
	}
	metal, err := Run(structureOf("FeNi3"), p) // Δχ = 0.08 → metal
	if err != nil || !metal.Converged() {
		t.Fatalf("metal: %+v, %v", metal, err)
	}
	if metal.Bandgap != 0 {
		t.Errorf("FeNi3 gap = %v, want 0", metal.Bandgap)
	}
}

func TestCohesiveEnergyFavorsIonicBonding(t *testing.T) {
	nacl := CohesiveEnergy(crystal.MustParseFormula("NaCl"))
	feni := CohesiveEnergy(crystal.MustParseFormula("FeNi"))
	if nacl >= feni {
		t.Errorf("NaCl cohesion %f should be stronger than FeNi %f", nacl, feni)
	}
	if CohesiveEnergy(crystal.Composition{}) != 0 {
		t.Error("empty cohesion nonzero")
	}
	if CohesiveEnergy(crystal.MustParseFormula("Fe")) != 0 {
		t.Error("elemental cohesion nonzero")
	}
}

func TestLithiationIsExothermic(t *testing.T) {
	// E(LiFePO4) < E(FePO4) + E(Li metal): lithium insertion must release
	// energy or every computed battery voltage would be negative.
	host := crystal.MustParseFormula("FePO4")
	lith := crystal.MustParseFormula("LiFePO4")
	eHost := CohesiveEnergy(host) + refSum(host)
	eLith := CohesiveEnergy(lith) + refSum(lith)
	eLi := ElementalEnergy("Li")
	dE := eLith - eHost - eLi
	if dE >= 0 {
		t.Errorf("lithiation dE = %f, want negative", dE)
	}
	// And the implied voltage is physical (0-6 V).
	v := -dE
	if v < 0.5 || v > 6 {
		t.Errorf("implied voltage %f V outside physical range", v)
	}
}

func refSum(c crystal.Composition) float64 {
	var e float64
	for sym, n := range c {
		e += ElementalEnergy(sym) * n
	}
	return e
}

func TestOutcarRoundTrip(t *testing.T) {
	st := structureOf("Fe2O3")
	p := DefaultParams()
	p.Potim = 0.2
	p.Algo = "Normal"
	p.NELM = 500
	res, err := Run(st, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged() {
		t.Fatalf("run failed: %s", res.Code)
	}
	if len(res.Outcar) < 500 {
		t.Errorf("outcar suspiciously small: %d bytes", len(res.Outcar))
	}
	sum, err := ParseOutcar(res.Outcar)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Formula != "Fe2O3" {
		t.Errorf("formula = %q", sum.Formula)
	}
	if math.Abs(sum.FinalEnergy-res.FinalEnergy) > 1e-6 {
		t.Errorf("energy = %v, want %v", sum.FinalEnergy, res.FinalEnergy)
	}
	if math.Abs(sum.Bandgap-res.Bandgap) > 1e-3 {
		t.Errorf("gap = %v, want %v", sum.Bandgap, res.Bandgap)
	}
	if sum.SCFSteps != res.SCFSteps {
		t.Errorf("steps = %d, want %d", sum.SCFSteps, res.SCFSteps)
	}
	if sum.Code != OK {
		t.Errorf("code = %s", sum.Code)
	}
	if sum.NElectrons != 76 {
		t.Errorf("nelectrons = %v", sum.NElectrons)
	}
	// The summary must be a real reduction of the raw log.
	if sum.ElapsedSec <= 0 {
		t.Error("elapsed missing")
	}
}

func TestOutcarParseFailures(t *testing.T) {
	st := structureOf("LiCoO2")
	// ZBRENT log parses with the right code.
	var zb *Result
	p := DefaultParams()
	p.NELM = 1000
	for _, r := range icsd.Generate(icsd.Config{Seed: 7, DuplicateRate: 0}, 200) {
		res, _ := Run(r.Structure, p)
		if res != nil && res.Code == ErrZBrent {
			zb = res
			break
		}
	}
	if zb != nil {
		sum, err := ParseOutcar(zb.Outcar)
		if err != nil || sum.Code != ErrZBrent {
			t.Errorf("ZBRENT parse: %+v err=%v", sum, err)
		}
	}
	// Garbage is rejected.
	if _, err := ParseOutcar([]byte("random text\n")); err == nil {
		t.Error("garbage accepted")
	}
	_ = st
}

func TestOutcarNonConvParse(t *testing.T) {
	p := DefaultParams()
	p.Potim = 0.2
	p.NELM = 5
	for _, r := range icsd.Generate(icsd.Config{Seed: 31, DuplicateRate: 0}, 100) {
		res, err := Run(r.Structure, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Code == ErrNonConverged {
			sum, err := ParseOutcar(res.Outcar)
			if err != nil || sum.Code != ErrNonConverged {
				t.Errorf("NONCONV parse: %+v err=%v", sum, err)
			}
			if !strings.Contains(string(res.Outcar), "NELM=5") {
				t.Error("outcar missing NELM warning")
			}
			return
		}
	}
	t.Skip("no non-converged structure at this seed")
}

func TestComputeBandStructure(t *testing.T) {
	st := structureOf("LiF")
	p := DefaultParams()
	p.Potim = 0.2
	p.Algo = "Normal"
	p.NELM = 2000
	res, err := Run(st, p)
	if err != nil || !res.Converged() {
		t.Fatalf("%+v %v", res, err)
	}
	bs := ComputeBandStructure(st, res, 8, 50)
	if len(bs.Bands) != 8 {
		t.Fatalf("bands = %d", len(bs.Bands))
	}
	for _, band := range bs.Bands {
		if len(band) != 50 {
			t.Fatalf("band length = %d", len(band))
		}
	}
	if len(bs.KPath) != 50 {
		t.Errorf("kpath = %d", len(bs.KPath))
	}
	if bs.Gap != res.Bandgap {
		t.Error("gap mismatch")
	}
	// Conduction bands (upper half) sit above valence bands everywhere by
	// at least the gap at the band edge k=0.
	vTop := bs.Bands[3][0]
	cBot := bs.Bands[4][0]
	if cBot-vTop < bs.Gap-1e-9 {
		t.Errorf("edge separation %f < gap %f", cBot-vTop, bs.Gap)
	}
	// Degenerate inputs clamp.
	small := ComputeBandStructure(st, res, 0, 0)
	if len(small.Bands) != 2 || len(small.Bands[0]) != 2 {
		t.Errorf("clamped dims: %d x %d", len(small.Bands), len(small.Bands[0]))
	}
}
