package dft

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"

	"matproj/internal/crystal"
)

// The OUTCAR analogue: the simulator renders a multi-kB text log per run
// ("from a small input ... several MB of intermediate output data",
// §III-B) which the Analyzer must parse and reduce before loading into
// the datastore. renderOutcar writes it; ParseOutcar reduces it back to a
// compact summary.

// renderOutcar renders the verbose run log.
func renderOutcar(st *crystal.Structure, p Params, res *Result, history []float64) []byte {
	var b bytes.Buffer
	comp := st.Composition()
	fmt.Fprintf(&b, " vasp.sim.1.0 (matproj synthetic DFT)\n")
	fmt.Fprintf(&b, " POSCAR: %s\n", comp.Formula())
	fmt.Fprintf(&b, " ions per type = ")
	for _, sym := range comp.Elements() {
		fmt.Fprintf(&b, "%s:%d ", sym, int(comp[sym]))
	}
	fmt.Fprintf(&b, "\n NELECT = %.1f\n", comp.NumElectrons())
	fmt.Fprintf(&b, " ENCUT  = %.1f eV\n", p.Encut)
	fmt.Fprintf(&b, " EDIFF  = %.2e\n", p.EDiff)
	fmt.Fprintf(&b, " NELM   = %d\n", p.NELM)
	fmt.Fprintf(&b, " ALGO   = %s\n", p.Algo)
	fmt.Fprintf(&b, " POTIM  = %.3f\n", p.Potim)
	fmt.Fprintf(&b, " KPOINTS: %d x %d x %d (%d irreducible)\n",
		p.KMesh[0], p.KMesh[1], p.KMesh[2], res.NKPoints)
	fmt.Fprintf(&b, " functional: %s\n", p.Functional)
	fmt.Fprintf(&b, " lattice volume: %.4f A^3\n", st.Lattice.Volume())
	b.WriteString("--------------------------------------------------\n")

	// Per-step SCF table: this is the bulky intermediate data.
	for i, r := range history {
		fmt.Fprintf(&b, "DAV: %4d   dE= %.8E   residual= %.8E   ncg= %4d\n",
			i+1, r*0.7, r, 40+i%17)
	}
	b.WriteString("--------------------------------------------------\n")

	switch res.Code {
	case ErrZBrent:
		b.WriteString("ZBRENT: fatal error in bracketing\n")
		b.WriteString("    please rerun with smaller POTIM\n")
	case ErrNonConverged:
		fmt.Fprintf(&b, "WARNING: aborting loop because NELM=%d steps reached\n", p.NELM)
		b.WriteString("         electronic self-consistency was not achieved\n")
	default:
		fmt.Fprintf(&b, " reached required accuracy after %d steps\n", res.SCFSteps)
		fmt.Fprintf(&b, " free  energy   TOTEN  = %.8f eV\n", res.FinalEnergy)
		fmt.Fprintf(&b, " energy per atom        = %.8f eV\n", res.EnergyPA)
		fmt.Fprintf(&b, " band gap               = %.4f eV\n", res.Bandgap)
		fmt.Fprintf(&b, " max residual force     = %.6f eV/A\n", res.MaxForce)
		fmt.Fprintf(&b, " charge density dipole  = %.6f e*A\n", res.ChargeDipole)
	}
	fmt.Fprintf(&b, " Elapsed time (sec): %.1f\n", res.Runtime.Seconds())
	fmt.Fprintf(&b, " General timing and accounting for job: done\n")
	return b.Bytes()
}

// Summary is the reduced form of an OUTCAR — what actually enters the
// tasks collection (hundreds of bytes instead of kilobytes/megabytes).
type Summary struct {
	Formula     string
	NElectrons  float64
	Code        FailureCode
	FinalEnergy float64
	EnergyPA    float64
	Bandgap     float64
	MaxForce    float64
	SCFSteps    int
	ElapsedSec  float64
	Encut       float64
	Algo        string
	Functional  string
}

// ParseOutcar parses and reduces a raw run log. It is the FireWorks
// Analyzer's workhorse: the multi-kB SCF history is discarded and only
// the summary quantities survive.
func ParseOutcar(raw []byte) (*Summary, error) {
	s := &Summary{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	sawHeader := false
	steps := 0
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, " vasp.sim"):
			sawHeader = true
		case strings.HasPrefix(line, " POSCAR:"):
			s.Formula = strings.TrimSpace(strings.TrimPrefix(line, " POSCAR:"))
		case strings.HasPrefix(line, " NELECT ="):
			s.NElectrons = parseFloatField(line)
		case strings.HasPrefix(line, " ENCUT"):
			s.Encut = parseFloatField(line)
		case strings.HasPrefix(line, " ALGO"):
			parts := strings.Fields(line)
			s.Algo = parts[len(parts)-1]
		case strings.HasPrefix(line, " functional:"):
			s.Functional = strings.TrimSpace(strings.TrimPrefix(line, " functional:"))
		case strings.HasPrefix(line, "DAV:"):
			steps++
		case strings.Contains(line, "ZBRENT: fatal error"):
			s.Code = ErrZBrent
		case strings.Contains(line, "electronic self-consistency was not achieved"):
			s.Code = ErrNonConverged
		case strings.Contains(line, "free  energy   TOTEN"):
			s.FinalEnergy = parseFloatField(line)
		case strings.Contains(line, "energy per atom"):
			s.EnergyPA = parseFloatField(line)
		case strings.Contains(line, "band gap"):
			s.Bandgap = parseFloatField(line)
		case strings.Contains(line, "max residual force"):
			s.MaxForce = parseFloatField(line)
		case strings.Contains(line, "Elapsed time (sec):"):
			s.ElapsedSec = parseFloatField(line)
		case strings.Contains(line, "reached required accuracy after"):
			fields := strings.Fields(line)
			for i, f := range fields {
				if f == "after" && i+1 < len(fields) {
					if n, err := strconv.Atoi(fields[i+1]); err == nil {
						s.SCFSteps = n
					}
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dft: parse outcar: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("dft: not a recognized run log")
	}
	if s.SCFSteps == 0 {
		s.SCFSteps = steps
	}
	return s, nil
}

// parseFloatField extracts the last parseable float from a line,
// tolerating trailing unit tokens ("eV", "eV/A").
func parseFloatField(line string) float64 {
	fields := strings.Fields(line)
	for i := len(fields) - 1; i >= 0; i-- {
		if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
			return v
		}
	}
	return 0
}

// BandStructure is the simulated band structure along a high-symmetry
// path, one of the calculated-property types the datastore serves
// ("3,000 bandstructures").
type BandStructure struct {
	Formula string
	// KPath labels the sampled k-points.
	KPath []string
	// Bands[b][k] is the energy (eV) of band b at k-point k.
	Bands [][]float64
	// Gap is the band gap (eV); 0 for metals.
	Gap float64
}

// ComputeBandStructure derives a band structure from a converged result:
// a few free-electron-like bands with the model gap inserted at the Fermi
// level. Deterministic per structure.
func ComputeBandStructure(st *crystal.Structure, res *Result, nBands, nK int) *BandStructure {
	if nBands < 2 {
		nBands = 2
	}
	if nK < 2 {
		nK = 2
	}
	h := structureHash(st)
	labels := []string{"G", "X", "M", "G", "R"}
	bs := &BandStructure{
		Formula: st.Composition().Formula(),
		Gap:     res.Bandgap,
	}
	for k := 0; k < nK; k++ {
		bs.KPath = append(bs.KPath, labels[k*len(labels)/nK])
	}
	for b := 0; b < nBands; b++ {
		band := make([]float64, nK)
		offset := float64(b) * 1.3
		if b >= nBands/2 {
			offset += res.Bandgap
		}
		width := 1.5 + hashFloat(h, fmt.Sprintf("band%d", b))
		for k := 0; k < nK; k++ {
			x := float64(k) / float64(nK-1)
			band[k] = offset - float64(nBands)/2*1.3 + width*(1-math.Cos(2*math.Pi*x))/2
		}
		bs.Bands = append(bs.Bands, band)
	}
	return bs
}
