// Package crystal implements the materials object model used throughout
// the pipeline: the periodic table, compositions with formula parsing,
// lattices, crystal structures, and the Materials Project Source (MPS)
// record format — the Go counterpart of the pymatgen core objects the
// paper builds on.
package crystal

import (
	"fmt"
	"sort"
)

// Element describes one chemical element.
type Element struct {
	Symbol            string
	Name              string
	Z                 int     // atomic number
	Mass              float64 // atomic mass, u
	Electronegativity float64 // Pauling scale; 0 when undefined
	// OxidationStates lists common oxidation states, used by the charge-
	// balance screening in the synthetic dataset generator.
	OxidationStates []int
}

// elementTable holds elements H through Pu. Masses are standard atomic
// weights; electronegativities are Pauling values (0 where undefined).
var elementTable = []Element{
	{"H", "Hydrogen", 1, 1.008, 2.20, []int{-1, 1}},
	{"He", "Helium", 2, 4.0026, 0, []int{}},
	{"Li", "Lithium", 3, 6.94, 0.98, []int{1}},
	{"Be", "Beryllium", 4, 9.0122, 1.57, []int{2}},
	{"B", "Boron", 5, 10.81, 2.04, []int{3}},
	{"C", "Carbon", 6, 12.011, 2.55, []int{-4, -2, 2, 4}},
	{"N", "Nitrogen", 7, 14.007, 3.04, []int{-3, 3, 5}},
	{"O", "Oxygen", 8, 15.999, 3.44, []int{-2}},
	{"F", "Fluorine", 9, 18.998, 3.98, []int{-1}},
	{"Ne", "Neon", 10, 20.180, 0, []int{}},
	{"Na", "Sodium", 11, 22.990, 0.93, []int{1}},
	{"Mg", "Magnesium", 12, 24.305, 1.31, []int{2}},
	{"Al", "Aluminium", 13, 26.982, 1.61, []int{3}},
	{"Si", "Silicon", 14, 28.085, 1.90, []int{-4, 4}},
	{"P", "Phosphorus", 15, 30.974, 2.19, []int{-3, 3, 5}},
	{"S", "Sulfur", 16, 32.06, 2.58, []int{-2, 4, 6}},
	{"Cl", "Chlorine", 17, 35.45, 3.16, []int{-1, 1, 3, 5, 7}},
	{"Ar", "Argon", 18, 39.948, 0, []int{}},
	{"K", "Potassium", 19, 39.098, 0.82, []int{1}},
	{"Ca", "Calcium", 20, 40.078, 1.00, []int{2}},
	{"Sc", "Scandium", 21, 44.956, 1.36, []int{3}},
	{"Ti", "Titanium", 22, 47.867, 1.54, []int{2, 3, 4}},
	{"V", "Vanadium", 23, 50.942, 1.63, []int{2, 3, 4, 5}},
	{"Cr", "Chromium", 24, 51.996, 1.66, []int{2, 3, 6}},
	{"Mn", "Manganese", 25, 54.938, 1.55, []int{2, 3, 4, 7}},
	{"Fe", "Iron", 26, 55.845, 1.83, []int{2, 3}},
	{"Co", "Cobalt", 27, 58.933, 1.88, []int{2, 3}},
	{"Ni", "Nickel", 28, 58.693, 1.91, []int{2, 3}},
	{"Cu", "Copper", 29, 63.546, 1.90, []int{1, 2}},
	{"Zn", "Zinc", 30, 65.38, 1.65, []int{2}},
	{"Ga", "Gallium", 31, 69.723, 1.81, []int{3}},
	{"Ge", "Germanium", 32, 72.630, 2.01, []int{2, 4}},
	{"As", "Arsenic", 33, 74.922, 2.18, []int{-3, 3, 5}},
	{"Se", "Selenium", 34, 78.971, 2.55, []int{-2, 4, 6}},
	{"Br", "Bromine", 35, 79.904, 2.96, []int{-1, 1, 5}},
	{"Kr", "Krypton", 36, 83.798, 3.00, []int{}},
	{"Rb", "Rubidium", 37, 85.468, 0.82, []int{1}},
	{"Sr", "Strontium", 38, 87.62, 0.95, []int{2}},
	{"Y", "Yttrium", 39, 88.906, 1.22, []int{3}},
	{"Zr", "Zirconium", 40, 91.224, 1.33, []int{4}},
	{"Nb", "Niobium", 41, 92.906, 1.60, []int{3, 5}},
	{"Mo", "Molybdenum", 42, 95.95, 2.16, []int{2, 3, 4, 6}},
	{"Tc", "Technetium", 43, 98.0, 1.90, []int{4, 7}},
	{"Ru", "Ruthenium", 44, 101.07, 2.20, []int{2, 3, 4}},
	{"Rh", "Rhodium", 45, 102.91, 2.28, []int{3}},
	{"Pd", "Palladium", 46, 106.42, 2.20, []int{2, 4}},
	{"Ag", "Silver", 47, 107.87, 1.93, []int{1}},
	{"Cd", "Cadmium", 48, 112.41, 1.69, []int{2}},
	{"In", "Indium", 49, 114.82, 1.78, []int{3}},
	{"Sn", "Tin", 50, 118.71, 1.96, []int{2, 4}},
	{"Sb", "Antimony", 51, 121.76, 2.05, []int{-3, 3, 5}},
	{"Te", "Tellurium", 52, 127.60, 2.10, []int{-2, 4, 6}},
	{"I", "Iodine", 53, 126.90, 2.66, []int{-1, 1, 5, 7}},
	{"Xe", "Xenon", 54, 131.29, 2.60, []int{}},
	{"Cs", "Caesium", 55, 132.91, 0.79, []int{1}},
	{"Ba", "Barium", 56, 137.33, 0.89, []int{2}},
	{"La", "Lanthanum", 57, 138.91, 1.10, []int{3}},
	{"Ce", "Cerium", 58, 140.12, 1.12, []int{3, 4}},
	{"Pr", "Praseodymium", 59, 140.91, 1.13, []int{3}},
	{"Nd", "Neodymium", 60, 144.24, 1.14, []int{3}},
	{"Pm", "Promethium", 61, 145.0, 1.13, []int{3}},
	{"Sm", "Samarium", 62, 150.36, 1.17, []int{2, 3}},
	{"Eu", "Europium", 63, 151.96, 1.20, []int{2, 3}},
	{"Gd", "Gadolinium", 64, 157.25, 1.20, []int{3}},
	{"Tb", "Terbium", 65, 158.93, 1.10, []int{3, 4}},
	{"Dy", "Dysprosium", 66, 162.50, 1.22, []int{3}},
	{"Ho", "Holmium", 67, 164.93, 1.23, []int{3}},
	{"Er", "Erbium", 68, 167.26, 1.24, []int{3}},
	{"Tm", "Thulium", 69, 168.93, 1.25, []int{3}},
	{"Yb", "Ytterbium", 70, 173.05, 1.10, []int{2, 3}},
	{"Lu", "Lutetium", 71, 174.97, 1.27, []int{3}},
	{"Hf", "Hafnium", 72, 178.49, 1.30, []int{4}},
	{"Ta", "Tantalum", 73, 180.95, 1.50, []int{5}},
	{"W", "Tungsten", 74, 183.84, 2.36, []int{4, 6}},
	{"Re", "Rhenium", 75, 186.21, 1.90, []int{4, 7}},
	{"Os", "Osmium", 76, 190.23, 2.20, []int{4}},
	{"Ir", "Iridium", 77, 192.22, 2.20, []int{3, 4}},
	{"Pt", "Platinum", 78, 195.08, 2.28, []int{2, 4}},
	{"Au", "Gold", 79, 196.97, 2.54, []int{1, 3}},
	{"Hg", "Mercury", 80, 200.59, 2.00, []int{1, 2}},
	{"Tl", "Thallium", 81, 204.38, 1.62, []int{1, 3}},
	{"Pb", "Lead", 82, 207.2, 2.33, []int{2, 4}},
	{"Bi", "Bismuth", 83, 208.98, 2.02, []int{3, 5}},
	{"Po", "Polonium", 84, 209.0, 2.00, []int{2, 4}},
	{"At", "Astatine", 85, 210.0, 2.20, []int{-1, 1}},
	{"Rn", "Radon", 86, 222.0, 0, []int{}},
	{"Fr", "Francium", 87, 223.0, 0.70, []int{1}},
	{"Ra", "Radium", 88, 226.0, 0.90, []int{2}},
	{"Ac", "Actinium", 89, 227.0, 1.10, []int{3}},
	{"Th", "Thorium", 90, 232.04, 1.30, []int{4}},
	{"Pa", "Protactinium", 91, 231.04, 1.50, []int{4, 5}},
	{"U", "Uranium", 92, 238.03, 1.38, []int{3, 4, 5, 6}},
	{"Np", "Neptunium", 93, 237.0, 1.36, []int{3, 4, 5, 6}},
	{"Pu", "Plutonium", 94, 244.0, 1.28, []int{3, 4, 5, 6}},
}

var (
	bySymbol map[string]*Element
	byZ      map[int]*Element
)

func init() {
	bySymbol = make(map[string]*Element, len(elementTable))
	byZ = make(map[int]*Element, len(elementTable))
	for i := range elementTable {
		e := &elementTable[i]
		bySymbol[e.Symbol] = e
		byZ[e.Z] = e
	}
}

// GetElement looks an element up by symbol.
func GetElement(symbol string) (*Element, error) {
	e, ok := bySymbol[symbol]
	if !ok {
		return nil, fmt.Errorf("crystal: unknown element %q", symbol)
	}
	return e, nil
}

// MustElement panics on unknown symbols; for static data.
func MustElement(symbol string) *Element {
	e, err := GetElement(symbol)
	if err != nil {
		panic(err)
	}
	return e
}

// ElementByZ looks an element up by atomic number.
func ElementByZ(z int) (*Element, error) {
	e, ok := byZ[z]
	if !ok {
		return nil, fmt.Errorf("crystal: no element with Z=%d", z)
	}
	return e, nil
}

// IsElement reports whether symbol names a known element.
func IsElement(symbol string) bool {
	_, ok := bySymbol[symbol]
	return ok
}

// AllSymbols returns every known element symbol sorted by atomic number.
func AllSymbols() []string {
	out := make([]string, len(elementTable))
	for i, e := range elementTable {
		out[i] = e.Symbol
	}
	return out
}

// SortSymbolsByElectronegativity orders symbols ascending by Pauling
// electronegativity (ties by Z), the canonical ordering for formula
// rendering.
func SortSymbolsByElectronegativity(symbols []string) []string {
	out := append([]string(nil), symbols...)
	sort.Slice(out, func(i, j int) bool {
		a, b := bySymbol[out[i]], bySymbol[out[j]]
		if a == nil || b == nil {
			return out[i] < out[j]
		}
		if a.Electronegativity != b.Electronegativity {
			return a.Electronegativity < b.Electronegativity
		}
		return a.Z < b.Z
	})
	return out
}
