package crystal

import (
	"fmt"

	"matproj/internal/document"
)

// MPSRecord is a Materials Project Source record: "our standard JSON
// representation of a crystal and its metadata" (§III-B1). It bundles the
// structure with provenance — where the crystal came from (ICSD, a user
// submission, ...) — and the derived physical characteristics that must
// "be stored and accessed" (atomic masses, positions, electron counts).
type MPSRecord struct {
	ID        string // canonical id, e.g. "mps-000042"
	Structure *Structure
	Source    string // provenance: "icsd", "user", ...
	SourceID  string // identifier within the source, e.g. ICSD number
	CreatedBy string // submitting user
	Tags      []string
}

// NewMPSID formats the canonical MPS identifier.
func NewMPSID(n int) string { return fmt.Sprintf("mps-%06d", n) }

// ToDoc serializes the record to the document stored in the mps
// collection. Derived quantities (formula, elements, electron count,
// weight, density) are denormalized in so the paper's job-selection
// queries can filter on them directly.
func (r *MPSRecord) ToDoc() document.D {
	comp := r.Structure.Composition()
	elems := comp.Elements()
	elemsAny := make([]any, len(elems))
	for i, e := range elems {
		elemsAny[i] = e
	}
	tags := make([]any, len(r.Tags))
	for i, t := range r.Tags {
		tags[i] = t
	}
	return document.D{
		"_id":             r.ID,
		"structure_id":    r.Structure.Fingerprint(),
		"formula":         comp.Formula(),
		"reduced_formula": comp.ReducedFormula(),
		"elements":        elemsAny,
		"nelements":       int64(len(elems)),
		"nsites":          int64(r.Structure.NumSites()),
		"nelectrons":      comp.NumElectrons(),
		"weight":          comp.Weight(),
		"density":         r.Structure.Density(),
		"structure":       map[string]any(r.Structure.ToDoc()),
		"meta": map[string]any{
			"source":     r.Source,
			"source_id":  r.SourceID,
			"created_by": r.CreatedBy,
			"tags":       tags,
		},
	}
}

// MPSFromDoc reverses ToDoc.
func MPSFromDoc(d document.D) (*MPSRecord, error) {
	id, _ := d["_id"].(string)
	if id == "" {
		return nil, fmt.Errorf("crystal: MPS doc missing _id")
	}
	st := d.GetDoc("structure")
	if st == nil {
		return nil, fmt.Errorf("crystal: MPS doc %s missing structure", id)
	}
	s, err := StructureFromDoc(st)
	if err != nil {
		return nil, fmt.Errorf("crystal: MPS doc %s: %w", id, err)
	}
	rec := &MPSRecord{
		ID:        id,
		Structure: s,
		Source:    d.GetString("meta.source"),
		SourceID:  d.GetString("meta.source_id"),
		CreatedBy: d.GetString("meta.created_by"),
	}
	for _, t := range d.GetArray("meta.tags") {
		if ts, ok := t.(string); ok {
			rec.Tags = append(rec.Tags, ts)
		}
	}
	return rec, nil
}
