package crystal

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Composition is a multiset of elements: symbol -> amount (amounts may be
// fractional for disordered compositions, but the generator only produces
// integral ones).
type Composition map[string]float64

// ParseFormula parses a chemical formula such as "Fe2O3", "LiFePO4", or
// "Ca(OH)2" (with nested parentheses) into a Composition. Unknown element
// symbols are errors.
func ParseFormula(formula string) (Composition, error) {
	comp := Composition{}
	amount, rest, err := parseGroup(formula)
	if err != nil {
		return nil, fmt.Errorf("crystal: formula %q: %w", formula, err)
	}
	if rest != "" {
		return nil, fmt.Errorf("crystal: formula %q: trailing input %q", formula, rest)
	}
	for sym, n := range amount {
		comp[sym] += n
	}
	if len(comp) == 0 {
		return nil, fmt.Errorf("crystal: formula %q: empty", formula)
	}
	return comp, nil
}

// MustParseFormula panics on parse errors; for static data.
func MustParseFormula(formula string) Composition {
	c, err := ParseFormula(formula)
	if err != nil {
		panic(err)
	}
	return c
}

// parseGroup parses a sequence of element/parenthesized terms until end of
// input or an unmatched ')'. It returns the accumulated composition and
// unconsumed input (starting at the ')' if one terminated the group).
func parseGroup(s string) (Composition, string, error) {
	comp := Composition{}
	for len(s) > 0 {
		switch {
		case s[0] == ')':
			return comp, s, nil
		case s[0] == '(':
			inner, rest, err := parseGroup(s[1:])
			if err != nil {
				return nil, "", err
			}
			if len(rest) == 0 || rest[0] != ')' {
				return nil, "", fmt.Errorf("unbalanced parentheses")
			}
			rest = rest[1:]
			mult, rest2 := parseCount(rest)
			for sym, n := range inner {
				comp[sym] += n * mult
			}
			s = rest2
		default:
			sym, rest, err := parseSymbol(s)
			if err != nil {
				return nil, "", err
			}
			count, rest2 := parseCount(rest)
			comp[sym] += count
			s = rest2
		}
	}
	return comp, "", nil
}

// parseSymbol consumes one element symbol: an uppercase letter optionally
// followed by lowercase letters, greedily matching the longest known
// symbol.
func parseSymbol(s string) (string, string, error) {
	if len(s) == 0 || s[0] < 'A' || s[0] > 'Z' {
		return "", "", fmt.Errorf("expected element symbol at %q", s)
	}
	end := 1
	for end < len(s) && s[end] >= 'a' && s[end] <= 'z' {
		end++
	}
	// Longest valid symbol wins: try the full run, then shorten.
	for l := end; l >= 1; l-- {
		if IsElement(s[:l]) {
			return s[:l], s[l:], nil
		}
	}
	return "", "", fmt.Errorf("unknown element symbol at %q", s[:end])
}

// parseCount consumes an optional (possibly fractional) multiplier,
// defaulting to 1.
func parseCount(s string) (float64, string) {
	end := 0
	for end < len(s) && (s[end] >= '0' && s[end] <= '9' || s[end] == '.') {
		end++
	}
	if end == 0 {
		return 1, s
	}
	n, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return 1, s
	}
	return n, s[end:]
}

// Elements returns the element symbols present, sorted alphabetically.
func (c Composition) Elements() []string {
	out := make([]string, 0, len(c))
	for sym, n := range c {
		if n > 0 {
			out = append(out, sym)
		}
	}
	sort.Strings(out)
	return out
}

// NumAtoms is the total atom count.
func (c Composition) NumAtoms() float64 {
	var n float64
	for _, v := range c {
		n += v
	}
	return n
}

// NumElectrons is the total electron count, assuming neutral atoms — the
// quantity the paper's example job-selection query filters on
// (nelectrons: {$lte: 200}).
func (c Composition) NumElectrons() float64 {
	var n float64
	for sym, v := range c {
		if e, ok := bySymbol[sym]; ok {
			n += float64(e.Z) * v
		}
	}
	return n
}

// Weight is the formula weight in atomic mass units (g/mol).
func (c Composition) Weight() float64 {
	var w float64
	for sym, v := range c {
		if e, ok := bySymbol[sym]; ok {
			w += e.Mass * v
		}
	}
	return w
}

// Get returns the amount of an element (0 if absent).
func (c Composition) Get(symbol string) float64 { return c[symbol] }

// Contains reports whether all listed elements are present.
func (c Composition) Contains(symbols ...string) bool {
	for _, s := range symbols {
		if c[s] <= 0 {
			return false
		}
	}
	return true
}

// Add returns a new composition with amt of symbol added.
func (c Composition) Add(symbol string, amt float64) Composition {
	out := c.Clone()
	out[symbol] += amt
	if out[symbol] <= 1e-12 {
		delete(out, symbol)
	}
	return out
}

// Remove returns a new composition without the given element.
func (c Composition) Remove(symbol string) Composition {
	out := c.Clone()
	delete(out, symbol)
	return out
}

// Clone deep-copies the composition.
func (c Composition) Clone() Composition {
	out := make(Composition, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Fractional returns the composition normalized to unit total.
func (c Composition) Fractional() Composition {
	total := c.NumAtoms()
	out := make(Composition, len(c))
	if total == 0 {
		return out
	}
	for k, v := range c {
		out[k] = v / total
	}
	return out
}

// gcdOfAmounts returns the greatest common integral divisor of the
// amounts, or 1 when any amount is non-integral.
func (c Composition) gcdOfAmounts() float64 {
	g := 0
	for _, v := range c {
		if math.Abs(v-math.Round(v)) > 1e-8 {
			return 1
		}
		n := int(math.Round(v))
		if n == 0 {
			continue
		}
		g = gcd(g, n)
	}
	if g == 0 {
		return 1
	}
	return float64(g)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

// Reduced returns the composition divided by the GCD of its integral
// amounts ("Fe4O6" -> "Fe2O3") along with the divisor.
func (c Composition) Reduced() (Composition, float64) {
	g := c.gcdOfAmounts()
	out := make(Composition, len(c))
	for k, v := range c {
		out[k] = v / g
	}
	return out, g
}

// Formula renders the composition with elements in electronegativity
// order (the convention pymatgen and the Materials Project use):
// electropositive species first, e.g. "Li3Fe2(PO4)3" renders "Li3Fe2P3O12".
func (c Composition) Formula() string {
	return c.format(SortSymbolsByElectronegativity(c.Elements()))
}

// ReducedFormula renders the reduced composition ("Fe4O6" -> "Fe2O3").
func (c Composition) ReducedFormula() string {
	r, _ := c.Reduced()
	return r.Formula()
}

// AlphabeticalFormula renders with elements sorted alphabetically, the
// canonical key for duplicate detection.
func (c Composition) AlphabeticalFormula() string {
	return c.format(c.Elements())
}

func (c Composition) format(order []string) string {
	var b strings.Builder
	for _, sym := range order {
		n := c[sym]
		if n <= 0 {
			continue
		}
		b.WriteString(sym)
		if math.Abs(n-1) < 1e-9 {
			continue
		}
		if math.Abs(n-math.Round(n)) < 1e-8 {
			fmt.Fprintf(&b, "%d", int(math.Round(n)))
		} else {
			fmt.Fprintf(&b, "%.3g", n)
		}
	}
	return b.String()
}

// Equal reports whether two compositions have the same elements with the
// same amounts within tolerance.
func (c Composition) Equal(other Composition) bool {
	if len(c.Elements()) != len(other.Elements()) {
		return false
	}
	for k, v := range c {
		if math.Abs(other[k]-v) > 1e-8 {
			return false
		}
	}
	return true
}

// ChargeBalanced reports whether some assignment of common oxidation
// states makes the composition neutral. Used by the synthetic dataset
// generator to avoid absurd chemistries. The search is exact for the
// small (<=4 element) compositions the generator produces.
func (c Composition) ChargeBalanced() bool {
	syms := c.Elements()
	if len(syms) == 0 || len(syms) > 4 {
		return false
	}
	var rec func(i int, charge float64) bool
	rec = func(i int, charge float64) bool {
		if i == len(syms) {
			return math.Abs(charge) < 1e-9
		}
		e := bySymbol[syms[i]]
		if e == nil || len(e.OxidationStates) == 0 {
			return false
		}
		for _, ox := range e.OxidationStates {
			if rec(i+1, charge+float64(ox)*c[syms[i]]) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}

// String implements fmt.Stringer.
func (c Composition) String() string { return c.Formula() }
