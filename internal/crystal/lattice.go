package crystal

import (
	"fmt"
	"math"
)

// Vec3 is a 3-vector in Cartesian or fractional coordinates.
type Vec3 [3]float64

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v[0] + w[0], v[1] + w[1], v[2] + w[2]} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v[0] - w[0], v[1] - w[1], v[2] - w[2]} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v[0], s * v[1], s * v[2]} }

// Dot returns the dot product.
func (v Vec3) Dot(w Vec3) float64 { return v[0]*w[0] + v[1]*w[1] + v[2]*w[2] }

// Cross returns the cross product.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v[1]*w[2] - v[2]*w[1],
		v[2]*w[0] - v[0]*w[2],
		v[0]*w[1] - v[1]*w[0],
	}
}

// Norm returns the Euclidean length.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Lattice is a crystal lattice defined by three row vectors (Å).
type Lattice struct {
	// Matrix rows are the lattice vectors a, b, c.
	Matrix [3]Vec3
}

// NewLatticeFromParameters builds a lattice from cell lengths (Å) and
// angles (degrees), using the standard crystallographic convention.
func NewLatticeFromParameters(a, b, c, alpha, beta, gamma float64) (Lattice, error) {
	if a <= 0 || b <= 0 || c <= 0 {
		return Lattice{}, fmt.Errorf("crystal: cell lengths must be positive (%g, %g, %g)", a, b, c)
	}
	for _, ang := range []float64{alpha, beta, gamma} {
		if ang <= 0 || ang >= 180 {
			return Lattice{}, fmt.Errorf("crystal: cell angles must lie in (0, 180): %g", ang)
		}
	}
	ar, br, gr := alpha*math.Pi/180, beta*math.Pi/180, gamma*math.Pi/180
	cosA, cosB, cosG := math.Cos(ar), math.Cos(br), math.Cos(gr)
	sinG := math.Sin(gr)
	cx := c * cosB
	cy := c * (cosA - cosB*cosG) / sinG
	czSq := c*c - cx*cx - cy*cy
	if czSq <= 0 {
		return Lattice{}, fmt.Errorf("crystal: degenerate cell (a=%g b=%g c=%g α=%g β=%g γ=%g)", a, b, c, alpha, beta, gamma)
	}
	return Lattice{Matrix: [3]Vec3{
		{a, 0, 0},
		{b * cosG, b * sinG, 0},
		{cx, cy, math.Sqrt(czSq)},
	}}, nil
}

// CubicLattice returns a cubic lattice with edge a.
func CubicLattice(a float64) Lattice {
	l, err := NewLatticeFromParameters(a, a, a, 90, 90, 90)
	if err != nil {
		panic(err) // unreachable for positive a
	}
	return l
}

// Volume is the cell volume in Å^3.
func (l Lattice) Volume() float64 {
	return math.Abs(l.Matrix[0].Dot(l.Matrix[1].Cross(l.Matrix[2])))
}

// A, B, C return the lattice vector lengths.
func (l Lattice) A() float64 { return l.Matrix[0].Norm() }
func (l Lattice) B() float64 { return l.Matrix[1].Norm() }
func (l Lattice) C() float64 { return l.Matrix[2].Norm() }

// Angles returns (alpha, beta, gamma) in degrees.
func (l Lattice) Angles() (alpha, beta, gamma float64) {
	a, b, c := l.Matrix[0], l.Matrix[1], l.Matrix[2]
	angle := func(u, v Vec3) float64 {
		cos := u.Dot(v) / (u.Norm() * v.Norm())
		cos = math.Max(-1, math.Min(1, cos))
		return math.Acos(cos) * 180 / math.Pi
	}
	return angle(b, c), angle(a, c), angle(a, b)
}

// CartesianCoords converts fractional to Cartesian coordinates.
func (l Lattice) CartesianCoords(frac Vec3) Vec3 {
	var out Vec3
	for i := 0; i < 3; i++ {
		out = out.Add(l.Matrix[i].Scale(frac[i]))
	}
	return out
}

// Reciprocal returns the reciprocal lattice (rows are 2π b_i).
func (l Lattice) Reciprocal() Lattice {
	v := l.Matrix[0].Dot(l.Matrix[1].Cross(l.Matrix[2]))
	f := 2 * math.Pi / v
	return Lattice{Matrix: [3]Vec3{
		l.Matrix[1].Cross(l.Matrix[2]).Scale(f),
		l.Matrix[2].Cross(l.Matrix[0]).Scale(f),
		l.Matrix[0].Cross(l.Matrix[1]).Scale(f),
	}}
}

// DSpacing returns the interplanar spacing for Miller indices (h,k,l),
// used by the XRD pattern generator.
func (l Lattice) DSpacing(h, k, lIdx int) float64 {
	r := l.Reciprocal()
	g := r.Matrix[0].Scale(float64(h)).
		Add(r.Matrix[1].Scale(float64(k))).
		Add(r.Matrix[2].Scale(float64(lIdx)))
	n := g.Norm()
	if n == 0 {
		return math.Inf(1)
	}
	return 2 * math.Pi / n
}
