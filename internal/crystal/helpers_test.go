package crystal

import "matproj/internal/document"

// mustDoc parses JSON test fixtures.
func mustDoc(s string) document.D { return document.MustFromJSON(s) }
