package crystal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseFormulaSimple(t *testing.T) {
	cases := []struct {
		formula string
		want    map[string]float64
	}{
		{"Fe2O3", map[string]float64{"Fe": 2, "O": 3}},
		{"LiFePO4", map[string]float64{"Li": 1, "Fe": 1, "P": 1, "O": 4}},
		{"NaCl", map[string]float64{"Na": 1, "Cl": 1}},
		{"H2O", map[string]float64{"H": 2, "O": 1}},
		{"Li10GeP2S12", map[string]float64{"Li": 10, "Ge": 1, "P": 2, "S": 12}},
		{"U", map[string]float64{"U": 1}},
		{"CO2", map[string]float64{"C": 1, "O": 2}},
		{"Co", map[string]float64{"Co": 1}}, // Co vs C+O disambiguation
	}
	for _, c := range cases {
		got, err := ParseFormula(c.formula)
		if err != nil {
			t.Errorf("ParseFormula(%q): %v", c.formula, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseFormula(%q) = %v, want %v", c.formula, got, c.want)
			continue
		}
		for sym, n := range c.want {
			if math.Abs(got[sym]-n) > 1e-12 {
				t.Errorf("ParseFormula(%q)[%s] = %v, want %v", c.formula, sym, got[sym], n)
			}
		}
	}
}

func TestParseFormulaParentheses(t *testing.T) {
	got := MustParseFormula("Ca(OH)2")
	if got["Ca"] != 1 || got["O"] != 2 || got["H"] != 2 {
		t.Errorf("Ca(OH)2 = %v", got)
	}
	nested := MustParseFormula("Mg(Al(OH)4)2")
	if nested["Mg"] != 1 || nested["Al"] != 2 || nested["O"] != 8 || nested["H"] != 8 {
		t.Errorf("nested = %v", nested)
	}
	frac := MustParseFormula("Fe0.5O")
	if frac["Fe"] != 0.5 {
		t.Errorf("frac = %v", frac)
	}
}

func TestParseFormulaErrors(t *testing.T) {
	for _, f := range []string{"", "Xx2", "2Fe", "Fe2O3)", "(Fe2O3", "fe2", "Fe(", "Q"} {
		if _, err := ParseFormula(f); err == nil {
			t.Errorf("ParseFormula(%q): want error", f)
		}
	}
}

func TestCompositionAccessors(t *testing.T) {
	c := MustParseFormula("Fe2O3")
	if got := c.Elements(); len(got) != 2 || got[0] != "Fe" || got[1] != "O" {
		t.Errorf("Elements = %v", got)
	}
	if c.NumAtoms() != 5 {
		t.Errorf("NumAtoms = %v", c.NumAtoms())
	}
	// 2*26 + 3*8 = 76
	if c.NumElectrons() != 76 {
		t.Errorf("NumElectrons = %v", c.NumElectrons())
	}
	want := 2*55.845 + 3*15.999
	if math.Abs(c.Weight()-want) > 1e-9 {
		t.Errorf("Weight = %v, want %v", c.Weight(), want)
	}
	if !c.Contains("Fe", "O") || c.Contains("Li") {
		t.Error("Contains wrong")
	}
	if c.Get("Fe") != 2 || c.Get("Na") != 0 {
		t.Error("Get wrong")
	}
}

func TestAddRemoveClone(t *testing.T) {
	c := MustParseFormula("FePO4")
	withLi := c.Add("Li", 1)
	if !withLi.Contains("Li") || c.Contains("Li") {
		t.Error("Add mutated receiver or failed")
	}
	gone := withLi.Add("Li", -1)
	if gone.Contains("Li") {
		t.Error("Add(-1) should remove")
	}
	noFe := c.Remove("Fe")
	if noFe.Contains("Fe") || !c.Contains("Fe") {
		t.Error("Remove wrong")
	}
	cl := c.Clone()
	cl["Fe"] = 99
	if c["Fe"] != 1 {
		t.Error("Clone aliased")
	}
}

func TestFractional(t *testing.T) {
	f := MustParseFormula("Fe2O3").Fractional()
	if math.Abs(f["Fe"]-0.4) > 1e-12 || math.Abs(f["O"]-0.6) > 1e-12 {
		t.Errorf("fractional = %v", f)
	}
	if got := (Composition{}).Fractional(); len(got) != 0 {
		t.Errorf("empty fractional = %v", got)
	}
}

func TestReducedFormula(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Fe4O6", "Fe2O3"},
		{"Fe2O3", "Fe2O3"},
		{"Li2Fe2P2O8", "LiFePO4"},
		{"O2", "O"},
	}
	for _, c := range cases {
		if got := MustParseFormula(c.in).ReducedFormula(); got != c.want {
			t.Errorf("ReducedFormula(%s) = %s, want %s", c.in, got, c.want)
		}
	}
	// Fractional amounts don't reduce.
	frac := MustParseFormula("Fe0.5O")
	if _, g := frac.Reduced(); g != 1 {
		t.Errorf("fractional gcd = %v", g)
	}
}

func TestFormulaElectronegativityOrder(t *testing.T) {
	// Li (0.98) < Fe (1.83) < P (2.19) < O (3.44)
	if got := MustParseFormula("O4PFeLi").Formula(); got != "LiFePO4" {
		t.Errorf("Formula = %s", got)
	}
	if got := MustParseFormula("Fe2O3").AlphabeticalFormula(); got != "Fe2O3" {
		t.Errorf("Alphabetical = %s", got)
	}
	if got := MustParseFormula("NaCl").AlphabeticalFormula(); got != "ClNa" {
		t.Errorf("Alphabetical NaCl = %s", got)
	}
	if got := MustParseFormula("Fe0.5O").Formula(); got != "Fe0.5O" {
		t.Errorf("fractional formula = %s", got)
	}
}

func TestCompositionEqual(t *testing.T) {
	a := MustParseFormula("Fe2O3")
	b := MustParseFormula("O3Fe2")
	if !a.Equal(b) {
		t.Error("same composition unequal")
	}
	if a.Equal(MustParseFormula("Fe2O4")) {
		t.Error("different amounts equal")
	}
	if a.Equal(MustParseFormula("Al2O3")) {
		t.Error("different elements equal")
	}
}

func TestChargeBalanced(t *testing.T) {
	balanced := []string{"Fe2O3", "NaCl", "LiFePO4", "CaO", "Li2O", "FeO"}
	for _, f := range balanced {
		if !MustParseFormula(f).ChargeBalanced() {
			t.Errorf("%s should be charge-balanced", f)
		}
	}
	unbalanced := []string{"NaCl2", "LiO2"} // Na+Cl2 can't balance; Li+1 vs O-4 can't
	for _, f := range unbalanced {
		if MustParseFormula(f).ChargeBalanced() {
			t.Errorf("%s should not be charge-balanced", f)
		}
	}
	if (Composition{}).ChargeBalanced() {
		t.Error("empty composition balanced")
	}
}

func TestElementsTable(t *testing.T) {
	fe, err := GetElement("Fe")
	if err != nil || fe.Z != 26 || fe.Name != "Iron" {
		t.Errorf("Fe = %+v err=%v", fe, err)
	}
	if _, err := GetElement("Xx"); err == nil {
		t.Error("unknown element accepted")
	}
	byz, err := ElementByZ(8)
	if err != nil || byz.Symbol != "O" {
		t.Errorf("Z=8 = %+v", byz)
	}
	if _, err := ElementByZ(200); err == nil {
		t.Error("Z=200 accepted")
	}
	if !IsElement("Li") || IsElement("Qq") {
		t.Error("IsElement wrong")
	}
	syms := AllSymbols()
	if len(syms) != 94 || syms[0] != "H" || syms[93] != "Pu" {
		t.Errorf("AllSymbols len=%d first=%s last=%s", len(syms), syms[0], syms[len(syms)-1])
	}
	defer func() {
		if recover() == nil {
			t.Error("MustElement should panic")
		}
	}()
	MustElement("Zz")
}

func TestQuickParseRoundTrip(t *testing.T) {
	syms := []string{"Li", "Fe", "O", "P", "Na", "Mn", "Co"}
	f := func(counts [7]uint8) bool {
		c := Composition{}
		for i, n := range counts {
			if n%9 > 0 {
				c[syms[i]] = float64(n%9) + 1
			}
		}
		if len(c) == 0 {
			return true
		}
		parsed, err := ParseFormula(c.Formula())
		if err != nil {
			return false
		}
		return parsed.Equal(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickReducedPreservesRatios(t *testing.T) {
	f := func(a, b uint8) bool {
		na, nb := float64(a%20)+1, float64(b%20)+1
		c := Composition{"Fe": na, "O": nb}
		r, g := c.Reduced()
		return math.Abs(r["Fe"]*g-na) < 1e-9 && math.Abs(r["O"]*g-nb) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
