package crystal

import (
	"fmt"
	"hash/fnv"
	"math"

	"matproj/internal/document"
)

// Site is one atomic site: an element at fractional coordinates in the
// unit cell.
type Site struct {
	Species string // element symbol
	Frac    Vec3   // fractional coordinates in [0, 1)
}

// Structure is a crystal: a lattice plus a basis of sites. This is the
// fundamental object flowing through the whole pipeline (MPS record →
// DFT input → stored material).
type Structure struct {
	Lattice Lattice
	Sites   []Site
}

// Fingerprint returns a stable identity hash of the structure (species,
// fractional coordinates, lattice), used as the canonical "crystal
// structure ID" for duplicate detection: redeterminations of the same
// crystal under different source ids share a fingerprint.
func (s *Structure) Fingerprint() string {
	h := fnv.New64a()
	for _, site := range s.Sites {
		fmt.Fprintf(h, "%s|%.5f,%.5f,%.5f;", site.Species, site.Frac[0], site.Frac[1], site.Frac[2])
	}
	for i := 0; i < 3; i++ {
		fmt.Fprintf(h, "%.5f,%.5f,%.5f;", s.Lattice.Matrix[i][0], s.Lattice.Matrix[i][1], s.Lattice.Matrix[i][2])
	}
	return fmt.Sprintf("struct-%016x", h.Sum64())
}

// Composition returns the structure's element multiset.
func (s *Structure) Composition() Composition {
	c := Composition{}
	for _, site := range s.Sites {
		c[site.Species]++
	}
	return c
}

// NumSites returns the number of atomic sites.
func (s *Structure) NumSites() int { return len(s.Sites) }

// Density returns the mass density in g/cm³.
func (s *Structure) Density() float64 {
	const avogadro = 6.02214076e23
	vol := s.Lattice.Volume() // Å^3
	if vol <= 0 {
		return 0
	}
	massG := s.Composition().Weight() / avogadro // grams per cell
	volCm3 := vol * 1e-24
	return massG / volCm3
}

// Validate checks structural invariants: a known species at every site,
// coordinates finite, non-degenerate lattice.
func (s *Structure) Validate() error {
	if len(s.Sites) == 0 {
		return fmt.Errorf("crystal: structure has no sites")
	}
	if s.Lattice.Volume() <= 0 {
		return fmt.Errorf("crystal: degenerate lattice (volume %g)", s.Lattice.Volume())
	}
	for i, site := range s.Sites {
		if !IsElement(site.Species) {
			return fmt.Errorf("crystal: site %d has unknown species %q", i, site.Species)
		}
		for _, x := range site.Frac {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("crystal: site %d has non-finite coordinate", i)
			}
		}
	}
	return nil
}

// WrapToCell maps all fractional coordinates into [0, 1).
func (s *Structure) WrapToCell() {
	for i := range s.Sites {
		for j := 0; j < 3; j++ {
			f := math.Mod(s.Sites[i].Frac[j], 1)
			if f < 0 {
				f++
			}
			s.Sites[i].Frac[j] = f
		}
	}
}

// MinDistance returns the minimal Cartesian distance between any two
// distinct sites, considering neighboring periodic images. Used by V&V to
// reject unphysical structures.
func (s *Structure) MinDistance() float64 {
	min := math.Inf(1)
	for i := 0; i < len(s.Sites); i++ {
		for j := i + 1; j < len(s.Sites); j++ {
			d := s.distance(s.Sites[i].Frac, s.Sites[j].Frac)
			if d < min {
				min = d
			}
		}
	}
	return min
}

func (s *Structure) distance(a, b Vec3) float64 {
	min := math.Inf(1)
	for dx := -1.0; dx <= 1; dx++ {
		for dy := -1.0; dy <= 1; dy++ {
			for dz := -1.0; dz <= 1; dz++ {
				diff := a.Sub(b).Add(Vec3{dx, dy, dz})
				d := s.Lattice.CartesianCoords(diff).Norm()
				if d < min {
					min = d
				}
			}
		}
	}
	return min
}

// ToDoc serializes the structure to its document form (the representation
// embedded in MPS records and task documents).
func (s *Structure) ToDoc() document.D {
	sites := make([]any, len(s.Sites))
	for i, site := range s.Sites {
		sites[i] = map[string]any{
			"species": site.Species,
			"abc":     []any{site.Frac[0], site.Frac[1], site.Frac[2]},
		}
	}
	m := s.Lattice.Matrix
	alpha, beta, gamma := s.Lattice.Angles()
	return document.D{
		"lattice": map[string]any{
			"matrix": []any{
				[]any{m[0][0], m[0][1], m[0][2]},
				[]any{m[1][0], m[1][1], m[1][2]},
				[]any{m[2][0], m[2][1], m[2][2]},
			},
			"a": s.Lattice.A(), "b": s.Lattice.B(), "c": s.Lattice.C(),
			"alpha": alpha, "beta": beta, "gamma": gamma,
			"volume": s.Lattice.Volume(),
		},
		"sites": sites,
	}
}

// StructureFromDoc reverses ToDoc.
func StructureFromDoc(d document.D) (*Structure, error) {
	matrix := d.GetArray("lattice.matrix")
	if len(matrix) != 3 {
		return nil, fmt.Errorf("crystal: structure doc missing lattice.matrix")
	}
	var s Structure
	for i, rowAny := range matrix {
		row, ok := rowAny.([]any)
		if !ok || len(row) != 3 {
			return nil, fmt.Errorf("crystal: lattice.matrix row %d malformed", i)
		}
		for j, v := range row {
			f, ok := document.AsFloat(v)
			if !ok {
				return nil, fmt.Errorf("crystal: lattice.matrix[%d][%d] not numeric", i, j)
			}
			s.Lattice.Matrix[i][j] = f
		}
	}
	for i, siteAny := range d.GetArray("sites") {
		site, ok := siteAny.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("crystal: site %d malformed", i)
		}
		sd := document.D(site)
		sp := sd.GetString("species")
		abc := sd.GetArray("abc")
		if sp == "" || len(abc) != 3 {
			return nil, fmt.Errorf("crystal: site %d missing species/abc", i)
		}
		var frac Vec3
		for j, v := range abc {
			f, ok := document.AsFloat(v)
			if !ok {
				return nil, fmt.Errorf("crystal: site %d abc[%d] not numeric", i, j)
			}
			frac[j] = f
		}
		s.Sites = append(s.Sites, Site{Species: sp, Frac: frac})
	}
	if len(s.Sites) == 0 {
		return nil, fmt.Errorf("crystal: structure doc has no sites")
	}
	return &s, nil
}
