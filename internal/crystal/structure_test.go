package crystal

import (
	"math"
	"testing"
)

func rockSalt() *Structure {
	// NaCl rock salt conventional-ish 2-atom cell.
	return &Structure{
		Lattice: CubicLattice(5.64),
		Sites: []Site{
			{Species: "Na", Frac: Vec3{0, 0, 0}},
			{Species: "Cl", Frac: Vec3{0.5, 0.5, 0.5}},
		},
	}
}

func TestLatticeFromParameters(t *testing.T) {
	l, err := NewLatticeFromParameters(3, 4, 5, 90, 90, 90)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Volume()-60) > 1e-9 {
		t.Errorf("volume = %v", l.Volume())
	}
	if math.Abs(l.A()-3) > 1e-9 || math.Abs(l.B()-4) > 1e-9 || math.Abs(l.C()-5) > 1e-9 {
		t.Errorf("lengths = %v %v %v", l.A(), l.B(), l.C())
	}
	al, be, ga := l.Angles()
	for _, a := range []float64{al, be, ga} {
		if math.Abs(a-90) > 1e-9 {
			t.Errorf("angle = %v", a)
		}
	}
	// Triclinic round trip.
	l2, err := NewLatticeFromParameters(4.1, 5.2, 6.3, 80, 95, 112)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l2.A()-4.1) > 1e-9 || math.Abs(l2.B()-5.2) > 1e-9 || math.Abs(l2.C()-6.3) > 1e-9 {
		t.Errorf("triclinic lengths = %v %v %v", l2.A(), l2.B(), l2.C())
	}
	a2, b2, g2 := l2.Angles()
	if math.Abs(a2-80) > 1e-6 || math.Abs(b2-95) > 1e-6 || math.Abs(g2-112) > 1e-6 {
		t.Errorf("triclinic angles = %v %v %v", a2, b2, g2)
	}
}

func TestLatticeFromParametersErrors(t *testing.T) {
	if _, err := NewLatticeFromParameters(-1, 2, 3, 90, 90, 90); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := NewLatticeFromParameters(1, 2, 3, 0, 90, 90); err == nil {
		t.Error("zero angle accepted")
	}
	if _, err := NewLatticeFromParameters(1, 2, 3, 90, 90, 181); err == nil {
		t.Error("angle > 180 accepted")
	}
	// Geometrically impossible angle combination.
	if _, err := NewLatticeFromParameters(1, 1, 1, 30, 150, 10); err == nil {
		t.Error("degenerate cell accepted")
	}
}

func TestVec3Ops(t *testing.T) {
	v, w := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if got := v.Add(w); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, -3, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if v.Dot(w) != 32 {
		t.Errorf("Dot = %v", v.Dot(w))
	}
	if got := v.Cross(w); got != (Vec3{-3, 6, -3}) {
		t.Errorf("Cross = %v", got)
	}
	if math.Abs(Vec3{3, 4, 0}.Norm()-5) > 1e-12 {
		t.Error("Norm wrong")
	}
}

func TestReciprocalLattice(t *testing.T) {
	l := CubicLattice(2)
	r := l.Reciprocal()
	// For cubic a, reciprocal vectors have length 2π/a.
	if math.Abs(r.A()-math.Pi) > 1e-9 {
		t.Errorf("reciprocal a = %v, want %v", r.A(), math.Pi)
	}
	// a_i · b_j = 2π δ_ij
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			dot := l.Matrix[i].Dot(r.Matrix[j])
			want := 0.0
			if i == j {
				want = 2 * math.Pi
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Errorf("a%d·b%d = %v, want %v", i, j, dot, want)
			}
		}
	}
}

func TestDSpacingCubic(t *testing.T) {
	a := 4.0
	l := CubicLattice(a)
	cases := []struct {
		h, k, lIdx int
		want       float64
	}{
		{1, 0, 0, a},
		{1, 1, 0, a / math.Sqrt2},
		{1, 1, 1, a / math.Sqrt(3)},
		{2, 0, 0, a / 2},
	}
	for _, c := range cases {
		if got := l.DSpacing(c.h, c.k, c.lIdx); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("d(%d%d%d) = %v, want %v", c.h, c.k, c.lIdx, got, c.want)
		}
	}
	if !math.IsInf(l.DSpacing(0, 0, 0), 1) {
		t.Error("d(000) should be +Inf")
	}
}

func TestStructureBasics(t *testing.T) {
	s := rockSalt()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	comp := s.Composition()
	if comp.Formula() != "NaCl" {
		t.Errorf("formula = %s", comp.Formula())
	}
	if s.NumSites() != 2 {
		t.Error("NumSites wrong")
	}
	// NaCl density ~2.17 g/cm3 for the full cell; our 2-atom cell at
	// a=5.64 contains 1 formula unit so density is 1/4 of real: just check
	// positivity and magnitude sanity.
	d := s.Density()
	if d <= 0 || d > 25 {
		t.Errorf("density = %v", d)
	}
}

func TestStructureValidateErrors(t *testing.T) {
	if err := (&Structure{Lattice: CubicLattice(3)}).Validate(); err == nil {
		t.Error("no sites accepted")
	}
	bad := rockSalt()
	bad.Sites[0].Species = "Qq"
	if err := bad.Validate(); err == nil {
		t.Error("unknown species accepted")
	}
	nan := rockSalt()
	nan.Sites[0].Frac[0] = math.NaN()
	if err := nan.Validate(); err == nil {
		t.Error("NaN coordinate accepted")
	}
	degenerate := rockSalt()
	degenerate.Lattice = Lattice{}
	if err := degenerate.Validate(); err == nil {
		t.Error("degenerate lattice accepted")
	}
}

func TestWrapToCell(t *testing.T) {
	s := rockSalt()
	s.Sites[0].Frac = Vec3{1.25, -0.25, 2}
	s.WrapToCell()
	f := s.Sites[0].Frac
	if math.Abs(f[0]-0.25) > 1e-12 || math.Abs(f[1]-0.75) > 1e-12 || math.Abs(f[2]) > 1e-12 {
		t.Errorf("wrapped = %v", f)
	}
}

func TestMinDistancePeriodicImages(t *testing.T) {
	s := &Structure{
		Lattice: CubicLattice(4),
		Sites: []Site{
			{Species: "Fe", Frac: Vec3{0.05, 0, 0}},
			{Species: "O", Frac: Vec3{0.95, 0, 0}},
		},
	}
	// Direct distance 0.9*4=3.6 but via periodic image 0.1*4=0.4.
	if got := s.MinDistance(); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("MinDistance = %v, want 0.4", got)
	}
}

func TestCartesianCoords(t *testing.T) {
	l := CubicLattice(2)
	got := l.CartesianCoords(Vec3{0.5, 0.5, 0.25})
	if got != (Vec3{1, 1, 0.5}) {
		t.Errorf("cartesian = %v", got)
	}
}

func TestStructureDocRoundTrip(t *testing.T) {
	s := rockSalt()
	d := s.ToDoc()
	if v, ok := d.GetFloat("lattice.volume"); !ok || math.Abs(v-5.64*5.64*5.64) > 1e-6 {
		t.Errorf("volume = %v", v)
	}
	back, err := StructureFromDoc(d)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSites() != 2 || back.Sites[1].Species != "Cl" {
		t.Errorf("round trip sites = %+v", back.Sites)
	}
	if math.Abs(back.Lattice.Volume()-s.Lattice.Volume()) > 1e-9 {
		t.Error("volume changed in round trip")
	}
	if math.Abs(back.Sites[1].Frac[0]-0.5) > 1e-12 {
		t.Error("coords changed")
	}
}

func TestStructureFromDocErrors(t *testing.T) {
	bad := []string{
		`{}`,
		`{"lattice": {"matrix": [[1,0,0],[0,1,0]]}, "sites": []}`,
		`{"lattice": {"matrix": [[1,0,0],[0,1,0],[0,0]]}, "sites": []}`,
		`{"lattice": {"matrix": [["x",0,0],[0,1,0],[0,0,1]]}, "sites": []}`,
		`{"lattice": {"matrix": [[1,0,0],[0,1,0],[0,0,1]]}, "sites": []}`,
		`{"lattice": {"matrix": [[1,0,0],[0,1,0],[0,0,1]]}, "sites": [3]}`,
		`{"lattice": {"matrix": [[1,0,0],[0,1,0],[0,0,1]]}, "sites": [{"species": "Na"}]}`,
		`{"lattice": {"matrix": [[1,0,0],[0,1,0],[0,0,1]]}, "sites": [{"species": "Na", "abc": [0, 0, "x"]}]}`,
	}
	for _, s := range bad {
		if _, err := StructureFromDoc(mustDoc(s)); err == nil {
			t.Errorf("StructureFromDoc(%s): want error", s)
		}
	}
}

func TestMPSRecordRoundTrip(t *testing.T) {
	rec := &MPSRecord{
		ID:        NewMPSID(42),
		Structure: rockSalt(),
		Source:    "icsd",
		SourceID:  "icsd-1234",
		CreatedBy: "core",
		Tags:      []string{"halide"},
	}
	d := rec.ToDoc()
	if d["_id"] != "mps-000042" {
		t.Errorf("_id = %v", d["_id"])
	}
	if d["reduced_formula"] != "NaCl" {
		t.Errorf("reduced_formula = %v", d["reduced_formula"])
	}
	if ne, _ := d.GetFloat("nelectrons"); ne != 11+17 {
		t.Errorf("nelectrons = %v", ne)
	}
	if n, _ := d.GetInt("nelements"); n != 2 {
		t.Errorf("nelements = %v", n)
	}
	back, err := MPSFromDoc(d)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != rec.ID || back.Source != "icsd" || back.SourceID != "icsd-1234" {
		t.Errorf("back = %+v", back)
	}
	if len(back.Tags) != 1 || back.Tags[0] != "halide" {
		t.Errorf("tags = %v", back.Tags)
	}
	if back.Structure.Composition().Formula() != "NaCl" {
		t.Error("structure lost")
	}
}

func TestMPSFromDocErrors(t *testing.T) {
	if _, err := MPSFromDoc(mustDoc(`{}`)); err == nil {
		t.Error("missing _id accepted")
	}
	if _, err := MPSFromDoc(mustDoc(`{"_id": "x"}`)); err == nil {
		t.Error("missing structure accepted")
	}
	if _, err := MPSFromDoc(mustDoc(`{"_id": "x", "structure": {"sites": []}}`)); err == nil {
		t.Error("bad structure accepted")
	}
}
