package webui

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/queryengine"
	"matproj/internal/sandbox"
)

func doc(s string) document.D { return document.MustFromJSON(s) }

func portal(t *testing.T) (*httptest.Server, *datastore.Store) {
	t.Helper()
	store := datastore.MustOpenMemory()
	mats := store.C("materials")
	rows := []string{
		`{"_id": "mat-1", "pretty_formula": "Fe2O3", "band_gap": 2.1, "e_per_atom": -1.6, "density": 5.2, "nsites": 5, "functional": "GGA", "elements": ["Fe", "O"]}`,
		`{"_id": "mat-2", "pretty_formula": "LiFePO4", "band_gap": 3.4, "e_per_atom": -1.7, "density": 3.6, "nsites": 7, "functional": "GGA", "elements": ["Li", "Fe", "P", "O"]}`,
		`{"_id": "mat-3", "pretty_formula": "NaCl", "band_gap": 5.0, "e_per_atom": -1.4, "density": 2.2, "nsites": 2, "functional": "GGA", "elements": ["Cl", "Na"]}`,
	}
	for _, r := range rows {
		if _, err := mats.Insert(doc(r)); err != nil {
			t.Fatal(err)
		}
	}
	store.C("bandstructures").Insert(doc(`{"material_id": "mat-1", "band_gap": 2.1, "bands": [[-1.0, -0.5, -1.0], [1.1, 1.5, 1.1]]}`))
	store.C("xrd").Insert(doc(`{"material_id": "mat-1", "peaks": [{"two_theta": 24.1, "intensity": 100.0}, {"two_theta": 33.2, "intensity": 40.0}]}`))
	srv := httptest.NewServer(NewServer(queryengine.New(store), store))
	t.Cleanup(srv.Close)
	return srv, store
}

func fetch(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestSearchPageListsAll(t *testing.T) {
	srv, _ := portal(t)
	status, body := fetch(t, srv.URL+"/")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	for _, want := range []string{"Materials Explorer", "Fe2O3", "LiFePO4", "NaCl", "3 materials"} {
		if !strings.Contains(body, want) {
			t.Errorf("page missing %q", want)
		}
	}
	if ct := "text/html"; !strings.Contains(body, "<html>") {
		t.Errorf("not HTML (%s)", ct)
	}
}

func TestSearchFilters(t *testing.T) {
	srv, _ := portal(t)
	_, body := fetch(t, srv.URL+"/?formula=Fe2O3")
	if !strings.Contains(body, "1 materials") || strings.Contains(body, "NaCl") {
		t.Errorf("formula filter broken")
	}
	_, body = fetch(t, srv.URL+"/?elements=Li,O")
	if !strings.Contains(body, "LiFePO4") || strings.Contains(body, "NaCl") {
		t.Errorf("elements filter broken")
	}
	_, body = fetch(t, srv.URL+"/?gap_min=3&gap_max=4")
	if !strings.Contains(body, "LiFePO4") || strings.Contains(body, "Fe2O3") {
		t.Errorf("gap filter broken")
	}
	_, body = fetch(t, srv.URL+"/?gap_min=abc")
	if !strings.Contains(body, "must be numbers") {
		t.Errorf("bad input not reported")
	}
}

func TestMaterialDetailRendersSVG(t *testing.T) {
	srv, store := portal(t)
	sb := sandbox.New(store, "materials")
	if _, err := sb.Annotate("mat-1", "bob", "lovely hematite"); err != nil {
		t.Fatal(err)
	}
	status, body := fetch(t, srv.URL+"/material/mat-1")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	for _, want := range []string{
		"Fe2O3", "Band gap (eV)", "2.1",
		`<svg class="bands"`, "polyline",
		`<svg class="xrd"`, "line x1=",
		"Community annotations", "lovely hematite",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("detail missing %q", want)
		}
	}
}

func TestMaterialDetailWithoutDerived(t *testing.T) {
	srv, _ := portal(t)
	status, body := fetch(t, srv.URL+"/material/mat-3")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	if strings.Contains(body, "svg") {
		t.Error("phantom SVG for material without derived data")
	}
	if !strings.Contains(body, "NaCl") {
		t.Error("detail missing formula")
	}
}

func TestMaterialNotFoundAnd404(t *testing.T) {
	srv, _ := portal(t)
	status, _ := fetch(t, srv.URL+"/material/ghost")
	if status != 404 {
		t.Errorf("ghost status = %d", status)
	}
	status, _ = fetch(t, srv.URL+"/material/")
	if status != 400 {
		t.Errorf("empty id status = %d", status)
	}
	status, _ = fetch(t, srv.URL+"/nonsense/path")
	if status != 404 {
		t.Errorf("bad path status = %d", status)
	}
}

func TestSearchEscapesHTML(t *testing.T) {
	srv, store := portal(t)
	// A hostile formula must be escaped by html/template.
	store.C("materials").Insert(doc(`{"_id": "mat-x", "pretty_formula": "<script>alert(1)</script>", "band_gap": 1.0, "elements": ["Fe"]}`))
	_, body := fetch(t, srv.URL+"/")
	if strings.Contains(body, "<script>alert(1)") {
		t.Error("XSS: formula not escaped")
	}
	if !strings.Contains(body, "&lt;script&gt;") {
		t.Error("escaped formula missing entirely")
	}
}
