// Package webui implements the web portal of §III-D1: a server-rendered
// HTML interface over the same datastore the API serves, with a search
// page (formula, element, and band-gap criteria) and per-material detail
// pages that render band structures and diffraction patterns as inline
// SVG — the stand-in for the production portal's "pan and zoom real-time
// visualizations of bandstructures, diffraction patterns, and other
// properties".
package webui

import (
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/queryengine"
	"matproj/internal/sandbox"
)

// Server renders the portal.
type Server struct {
	Engine  *queryengine.Engine
	Store   *datastore.Store
	Sandbox *sandbox.Manager
	mux     *http.ServeMux
	tpl     *template.Template
}

// NewServer wires the portal to a deployment.
func NewServer(engine *queryengine.Engine, store *datastore.Store) *Server {
	s := &Server{
		Engine:  engine,
		Store:   store,
		Sandbox: sandbox.New(store, "materials"),
		tpl:     template.Must(template.New("ui").Parse(pageTemplates)),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleSearch)
	mux.HandleFunc("GET /material/", s.handleMaterial)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// searchPage is the template context for the search view.
type searchPage struct {
	Query    string
	Elements string
	GapMin   string
	GapMax   string
	Results  []searchRow
	Total    int
	Error    string
}

type searchRow struct {
	ID       string
	Formula  string
	Elements string
	Gap      string
	EPerAtom string
	Density  string
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	page := searchPage{
		Query:    strings.TrimSpace(r.URL.Query().Get("formula")),
		Elements: strings.TrimSpace(r.URL.Query().Get("elements")),
		GapMin:   strings.TrimSpace(r.URL.Query().Get("gap_min")),
		GapMax:   strings.TrimSpace(r.URL.Query().Get("gap_max")),
	}
	filter := document.D{}
	if page.Query != "" {
		filter["pretty_formula"] = page.Query
	}
	if page.Elements != "" {
		var set []any
		for _, e := range strings.Split(page.Elements, ",") {
			if e = strings.TrimSpace(e); e != "" {
				set = append(set, e)
			}
		}
		if len(set) > 0 {
			filter["elements"] = document.D{"$all": set}
		}
	}
	gapCond := document.D{}
	if page.GapMin != "" {
		if v, err := strconv.ParseFloat(page.GapMin, 64); err == nil {
			gapCond["$gte"] = v
		} else {
			page.Error = "band gap bounds must be numbers"
		}
	}
	if page.GapMax != "" {
		if v, err := strconv.ParseFloat(page.GapMax, 64); err == nil {
			gapCond["$lte"] = v
		} else {
			page.Error = "band gap bounds must be numbers"
		}
	}
	if len(gapCond) > 0 {
		filter["band_gap"] = gapCond
	}
	if page.Error == "" {
		docs, err := s.Engine.Find("webui", "materials", filter,
			&datastore.FindOpts{Sort: []string{"pretty_formula"}, Limit: 50})
		if err != nil {
			page.Error = err.Error()
		} else {
			page.Total = len(docs)
			for _, d := range docs {
				page.Results = append(page.Results, searchRow{
					ID:       d.GetString("_id"),
					Formula:  d.GetString("pretty_formula"),
					Elements: joinElements(d.GetArray("elements")),
					Gap:      fmtFloat(d, "band_gap"),
					EPerAtom: fmtFloat(d, "e_per_atom"),
					Density:  fmtFloat(d, "density"),
				})
			}
		}
	}
	s.render(w, "search", page)
}

// materialPage is the template context for the detail view.
type materialPage struct {
	ID          string
	Formula     string
	Properties  []kv
	BandSVG     template.HTML
	XRDSVG      template.HTML
	Annotations []noteRow
	Error       string
}

type kv struct{ K, V string }

type noteRow struct{ User, Text string }

func (s *Server) handleMaterial(w http.ResponseWriter, r *http.Request) {
	id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/material/"), "/")
	if id == "" {
		http.Error(w, "material id required", http.StatusBadRequest)
		return
	}
	mat, err := s.Store.C("materials").FindID(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	page := materialPage{ID: id, Formula: mat.GetString("pretty_formula")}
	for _, f := range []struct{ label, field string }{
		{"Final energy (eV)", "final_energy"},
		{"Energy per atom (eV)", "e_per_atom"},
		{"Band gap (eV)", "band_gap"},
		{"Density (g/cm³)", "density"},
		{"Sites", "nsites"},
		{"Functional", "functional"},
		{"Formation energy (eV/atom)", "formation_energy_per_atom"},
		{"E above hull (eV/atom)", "e_above_hull"},
		{"Stable", "is_stable"},
	} {
		if v, ok := mat.Get(f.field); ok {
			page.Properties = append(page.Properties, kv{f.label, fmt.Sprint(v)})
		}
	}
	if bs, err := s.Store.C("bandstructures").FindOne(document.D{"material_id": id}, nil); err == nil {
		page.BandSVG = template.HTML(bandSVG(bs))
	}
	if x, err := s.Store.C("xrd").FindOne(document.D{"material_id": id}, nil); err == nil {
		page.XRDSVG = template.HTML(xrdSVG(x))
	}
	if notes, err := s.Sandbox.Annotations(id); err == nil {
		for _, n := range notes {
			page.Annotations = append(page.Annotations, noteRow{
				User: n.GetString("user"), Text: n.GetString("text"),
			})
		}
	}
	s.render(w, "material", page)
}

func (s *Server) render(w http.ResponseWriter, name string, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := s.tpl.ExecuteTemplate(w, name, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func joinElements(els []any) string {
	parts := make([]string, 0, len(els))
	for _, e := range els {
		if s, ok := e.(string); ok {
			parts = append(parts, s)
		}
	}
	return strings.Join(parts, ", ")
}

func fmtFloat(d document.D, field string) string {
	v, ok := d.GetFloat(field)
	if !ok {
		return "—"
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// bandSVG renders a band-structure document as an inline SVG plot.
func bandSVG(bs document.D) string {
	bands := bs.GetArray("bands")
	if len(bands) == 0 {
		return ""
	}
	const w, h = 420, 260
	minE, maxE := 1e18, -1e18
	series := make([][]float64, 0, len(bands))
	for _, bandAny := range bands {
		arr, ok := bandAny.([]any)
		if !ok || len(arr) == 0 {
			continue
		}
		band := make([]float64, len(arr))
		for i, v := range arr {
			f, _ := document.AsFloat(v)
			band[i] = f
			if f < minE {
				minE = f
			}
			if f > maxE {
				maxE = f
			}
		}
		series = append(series, band)
	}
	if maxE <= minE {
		maxE = minE + 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg class="bands" viewBox="0 0 %d %d" width="%d" height="%d">`, w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#fafafa" stroke="#ccc"/>`, w, h)
	for _, band := range series {
		b.WriteString(`<polyline fill="none" stroke="#2b6cb0" stroke-width="1.5" points="`)
		for i, e := range band {
			x := float64(i) / float64(max(len(band)-1, 1)) * (w - 20) // margin
			y := h - 10 - (e-minE)/(maxE-minE)*(h-20)
			fmt.Fprintf(&b, "%.1f,%.1f ", x+10, y)
		}
		b.WriteString(`"/>`)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// xrdSVG renders a diffraction pattern as an SVG stick plot.
func xrdSVG(x document.D) string {
	peaks := x.GetArray("peaks")
	if len(peaks) == 0 {
		return ""
	}
	const w, h = 420, 200
	var b strings.Builder
	fmt.Fprintf(&b, `<svg class="xrd" viewBox="0 0 %d %d" width="%d" height="%d">`, w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#fafafa" stroke="#ccc"/>`, w, h)
	for _, pAny := range peaks {
		p, ok := pAny.(map[string]any)
		if !ok {
			continue
		}
		pd := document.D(p)
		tt, _ := pd.GetFloat("two_theta")
		inten, _ := pd.GetFloat("intensity")
		px := tt / 90 * (w - 20)
		ph := inten / 100 * (h - 20)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#c53030" stroke-width="2"/>`,
			px+10, h-10, px+10, float64(h)-10-ph)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// pageTemplates holds both views. The styling is intentionally minimal;
// the production portal's AJAX/HTML5 interactivity is out of scope, but
// the information architecture (search → material detail with property
// visualizations) matches.
const pageTemplates = `
{{define "search"}}<!DOCTYPE html>
<html><head><title>Materials Explorer</title></head>
<body>
<h1>Materials Explorer</h1>
<form method="get" action="/">
  <label>Formula <input name="formula" value="{{.Query}}"></label>
  <label>Elements (comma-sep) <input name="elements" value="{{.Elements}}"></label>
  <label>Gap ≥ <input name="gap_min" size="5" value="{{.GapMin}}"></label>
  <label>Gap ≤ <input name="gap_max" size="5" value="{{.GapMax}}"></label>
  <button type="submit">Search</button>
</form>
{{if .Error}}<p class="error">{{.Error}}</p>{{end}}
<p>{{.Total}} materials</p>
<table border="1">
<tr><th>Material</th><th>Formula</th><th>Elements</th><th>Gap (eV)</th><th>E/atom (eV)</th><th>Density</th></tr>
{{range .Results}}
<tr><td><a href="/material/{{.ID}}">{{.ID}}</a></td><td>{{.Formula}}</td><td>{{.Elements}}</td><td>{{.Gap}}</td><td>{{.EPerAtom}}</td><td>{{.Density}}</td></tr>
{{end}}
</table>
</body></html>{{end}}

{{define "material"}}<!DOCTYPE html>
<html><head><title>{{.Formula}} — Materials Explorer</title></head>
<body>
<p><a href="/">&larr; search</a></p>
<h1>{{.Formula}} <small>({{.ID}})</small></h1>
<table border="1">
{{range .Properties}}<tr><th>{{.K}}</th><td>{{.V}}</td></tr>{{end}}
</table>
{{if .BandSVG}}<h2>Band structure</h2>{{.BandSVG}}{{end}}
{{if .XRDSVG}}<h2>X-ray diffraction</h2>{{.XRDSVG}}{{end}}
{{if .Annotations}}<h2>Community annotations</h2>
<ul>{{range .Annotations}}<li><b>{{.User}}</b>: {{.Text}}</li>{{end}}</ul>{{end}}
</body></html>{{end}}
`
