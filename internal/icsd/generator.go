// Package icsd generates a deterministic synthetic crystal-structure
// dataset standing in for the Inorganic Crystal Structure Database, the
// proprietary dataset that seeded the real Materials Project (§III-B1).
//
// The generator produces MPS records over real chemistries using a set of
// classic structure prototypes (rock salt, fluorite, perovskite, spinel,
// layered oxide, olivine). Compositions are screened for charge balance
// so the dataset looks like plausible inorganic chemistry, and a
// configurable fraction of entries are near-duplicates of earlier ones —
// the real ICSD contains many redeterminations of the same compound,
// which is exactly why FireWorks needs duplicate detection (§III-C3).
package icsd

import (
	"fmt"
	"math/rand"

	"matproj/internal/crystal"
)

// Prototype is a structural template: a lattice recipe plus decorated
// sites whose species are filled in per composition.
type Prototype struct {
	Name string
	// Roles maps each site to a role index: 0=cation A, 1=cation B,
	// 2=anion. Frac are the template fractional coordinates.
	Sites []ProtoSite
	// LatticeFor returns cell parameters scaled for the chosen species.
	// scale is a composition-derived size factor around 1.
	LatticeFor func(scale float64) (a, b, c, alpha, beta, gamma float64)
	// Roles counts how many distinct species roles the prototype needs
	// (2 for binary, 3 for ternary+anion, ...).
	NumRoles int
}

// ProtoSite is one template site.
type ProtoSite struct {
	Role int
	Frac crystal.Vec3
}

// prototypes are the structural families the generator draws from.
var prototypes = []Prototype{
	{
		Name:     "rocksalt",
		NumRoles: 2,
		Sites: []ProtoSite{
			{0, crystal.Vec3{0, 0, 0}},
			{1, crystal.Vec3{0.5, 0.5, 0.5}},
		},
		LatticeFor: func(s float64) (float64, float64, float64, float64, float64, float64) {
			return 4.2 * s, 4.2 * s, 4.2 * s, 90, 90, 90
		},
	},
	{
		Name:     "fluorite",
		NumRoles: 2,
		Sites: []ProtoSite{
			{0, crystal.Vec3{0, 0, 0}},
			{1, crystal.Vec3{0.25, 0.25, 0.25}},
			{1, crystal.Vec3{0.75, 0.75, 0.75}},
		},
		LatticeFor: func(s float64) (float64, float64, float64, float64, float64, float64) {
			return 5.4 * s, 5.4 * s, 5.4 * s, 90, 90, 90
		},
	},
	{
		Name:     "perovskite",
		NumRoles: 3,
		Sites: []ProtoSite{
			{0, crystal.Vec3{0, 0, 0}},
			{1, crystal.Vec3{0.5, 0.5, 0.5}},
			{2, crystal.Vec3{0.5, 0.5, 0}},
			{2, crystal.Vec3{0.5, 0, 0.5}},
			{2, crystal.Vec3{0, 0.5, 0.5}},
		},
		LatticeFor: func(s float64) (float64, float64, float64, float64, float64, float64) {
			return 3.9 * s, 3.9 * s, 3.9 * s, 90, 90, 90
		},
	},
	{
		Name:     "layered",
		NumRoles: 3,
		Sites: []ProtoSite{
			{0, crystal.Vec3{0, 0, 0}},
			{1, crystal.Vec3{0, 0, 0.5}},
			{2, crystal.Vec3{0, 0, 0.23}},
			{2, crystal.Vec3{0, 0, 0.77}},
		},
		LatticeFor: func(s float64) (float64, float64, float64, float64, float64, float64) {
			return 2.9 * s, 2.9 * s, 14.2 * s, 90, 90, 120
		},
	},
	{
		Name:     "spinel",
		NumRoles: 3,
		Sites: []ProtoSite{
			{0, crystal.Vec3{0.125, 0.125, 0.125}},
			{1, crystal.Vec3{0.5, 0.5, 0.5}},
			{1, crystal.Vec3{0.5, 0.25, 0.25}},
			{2, crystal.Vec3{0.26, 0.26, 0.26}},
			{2, crystal.Vec3{0.74, 0.74, 0.74}},
			{2, crystal.Vec3{0.26, 0.74, 0.74}},
			{2, crystal.Vec3{0.74, 0.26, 0.26}},
		},
		LatticeFor: func(s float64) (float64, float64, float64, float64, float64, float64) {
			return 8.1 * s, 8.1 * s, 8.1 * s, 90, 90, 90
		},
	},
	{
		Name:     "olivine",
		NumRoles: 4, // A (alkali), B (transition metal), P, O
		Sites: []ProtoSite{
			{0, crystal.Vec3{0, 0, 0}},
			{1, crystal.Vec3{0.28, 0.25, 0.98}},
			{3, crystal.Vec3{0.09, 0.25, 0.42}},
			{2, crystal.Vec3{0.10, 0.25, 0.74}},
			{2, crystal.Vec3{0.46, 0.25, 0.21}},
			{2, crystal.Vec3{0.17, 0.05, 0.28}},
			{2, crystal.Vec3{0.17, 0.45, 0.28}},
		},
		LatticeFor: func(s float64) (float64, float64, float64, float64, float64, float64) {
			return 10.3 * s, 6.0 * s, 4.7 * s, 90, 90, 90
		},
	},
}

// Species pools per role.
var (
	alkalis    = []string{"Li", "Na", "K", "Mg", "Ca", "Sr", "Ba", "Ag", "Cu", "Zn"}
	metals     = []string{"Fe", "Mn", "Co", "Ni", "Ti", "V", "Cr", "Mo", "Nb", "Al", "Zr", "W", "Sn", "Sc", "Y"}
	anions     = []string{"O", "S", "F", "Cl", "Se", "Br", "N"}
	polyanions = []string{"P", "Si", "B", "S"} // olivine "P" role
)

// Config controls dataset generation.
type Config struct {
	Seed int64
	// DuplicateRate is the probability of re-emitting a previous compound
	// under a fresh ICSD id (default 0.15 when negative).
	DuplicateRate float64
	// RequireChargeBalance screens out non-neutral chemistries.
	RequireChargeBalance bool
}

// Generator produces a deterministic stream of MPS records.
type Generator struct {
	rng     *rand.Rand
	cfg     Config
	seq     int
	icsdSeq int
	emitted []*crystal.MPSRecord
}

// NewGenerator creates a generator with the given configuration.
func NewGenerator(cfg Config) *Generator {
	if cfg.DuplicateRate < 0 {
		cfg.DuplicateRate = 0.15
	}
	return &Generator{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// Next produces the next MPS record. Duplicates (same structure, new
// source id) appear at the configured rate once some records exist.
func (g *Generator) Next() *crystal.MPSRecord {
	g.icsdSeq++
	if len(g.emitted) > 0 && g.rng.Float64() < g.cfg.DuplicateRate {
		orig := g.emitted[g.rng.Intn(len(g.emitted))]
		g.seq++
		dup := &crystal.MPSRecord{
			ID:        crystal.NewMPSID(g.seq),
			Structure: orig.Structure,
			Source:    "icsd",
			SourceID:  fmt.Sprintf("icsd-%06d", g.icsdSeq),
			CreatedBy: "core",
			Tags:      append([]string{"redetermination"}, orig.Tags...),
		}
		g.emitted = append(g.emitted, dup)
		return dup
	}
	for {
		rec, ok := g.tryGenerate()
		if ok {
			g.emitted = append(g.emitted, rec)
			return rec
		}
	}
}

func (g *Generator) tryGenerate() (*crystal.MPSRecord, bool) {
	proto := prototypes[g.rng.Intn(len(prototypes))]
	species := make([]string, proto.NumRoles)
	species[0] = alkalis[g.rng.Intn(len(alkalis))]
	species[1] = metals[g.rng.Intn(len(metals))]
	if proto.NumRoles >= 3 {
		species[2] = anions[g.rng.Intn(len(anions))]
	}
	if proto.NumRoles >= 4 {
		species[3] = polyanions[g.rng.Intn(len(polyanions))]
	}
	if proto.NumRoles == 2 {
		// Binary: role 1 is the anion for realism half the time.
		if g.rng.Intn(2) == 0 {
			species[1] = anions[g.rng.Intn(len(anions))]
		}
	}
	// Distinct species only.
	seen := map[string]bool{}
	for _, sp := range species {
		if seen[sp] {
			return nil, false
		}
		seen[sp] = true
	}
	// Size scale from mean atomic mass, with small jitter.
	var mass float64
	for _, sp := range species {
		mass += crystal.MustElement(sp).Mass
	}
	mass /= float64(len(species))
	scale := 0.9 + mass/400 + g.rng.Float64()*0.08

	a, b, c, al, be, ga := proto.LatticeFor(scale)
	lat, err := crystal.NewLatticeFromParameters(a, b, c, al, be, ga)
	if err != nil {
		return nil, false
	}
	st := &crystal.Structure{Lattice: lat}
	for _, ps := range proto.Sites {
		st.Sites = append(st.Sites, crystal.Site{Species: species[ps.Role], Frac: ps.Frac})
	}
	if err := st.Validate(); err != nil {
		return nil, false
	}
	if g.cfg.RequireChargeBalance && !st.Composition().ChargeBalanced() {
		return nil, false
	}
	g.seq++
	return &crystal.MPSRecord{
		ID:        crystal.NewMPSID(g.seq),
		Structure: st,
		Source:    "icsd",
		SourceID:  fmt.Sprintf("icsd-%06d", g.icsdSeq),
		CreatedBy: "core",
		Tags:      []string{proto.Name},
	}, true
}

// Generate produces n records with the given config.
func Generate(cfg Config, n int) []*crystal.MPSRecord {
	g := NewGenerator(cfg)
	out := make([]*crystal.MPSRecord, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// GenerateBatteryFrameworks produces n olivine/layered/spinel compounds
// containing a working alkali (Li or Na), the candidate set for the
// Fig. 1 battery screen. No duplicates are emitted.
func GenerateBatteryFrameworks(seed int64, n int) []*crystal.MPSRecord {
	g := NewGenerator(Config{Seed: seed, DuplicateRate: 0})
	out := make([]*crystal.MPSRecord, 0, n)
	for len(out) < n {
		rec, ok := g.tryGenerate()
		if !ok {
			continue
		}
		comp := rec.Structure.Composition()
		if !comp.Contains("Li") && !comp.Contains("Na") {
			continue
		}
		hasFramework := false
		for _, tag := range rec.Tags {
			switch tag {
			case "olivine", "layered", "spinel":
				hasFramework = true
			}
		}
		if !hasFramework {
			continue
		}
		out = append(out, rec)
	}
	return out
}
