package icsd

import (
	"testing"

	"matproj/internal/crystal"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7}, 50)
	b := Generate(Config{Seed: 7}, 50)
	if len(a) != 50 || len(b) != 50 {
		t.Fatal("wrong count")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("id mismatch at %d", i)
		}
		if a[i].Structure.Composition().Formula() != b[i].Structure.Composition().Formula() {
			t.Fatalf("formula mismatch at %d", i)
		}
	}
	// Different seed differs somewhere.
	c := Generate(Config{Seed: 8}, 50)
	same := true
	for i := range a {
		if a[i].Structure.Composition().Formula() != c[i].Structure.Composition().Formula() {
			same = false
			break
		}
	}
	if same {
		t.Error("seed has no effect")
	}
}

func TestGeneratedRecordsAreValid(t *testing.T) {
	for _, rec := range Generate(Config{Seed: 1}, 200) {
		if err := rec.Structure.Validate(); err != nil {
			t.Fatalf("%s: %v", rec.ID, err)
		}
		if rec.Source != "icsd" || rec.SourceID == "" || rec.ID == "" {
			t.Errorf("%s: bad provenance %+v", rec.ID, rec)
		}
		if rec.Structure.MinDistance() < 1.0 {
			t.Errorf("%s (%s): atoms too close: %.2f Å", rec.ID,
				rec.Structure.Composition().Formula(), rec.Structure.MinDistance())
		}
		// Round trip through the document form must survive.
		back, err := crystal.MPSFromDoc(rec.ToDoc())
		if err != nil {
			t.Fatalf("%s: %v", rec.ID, err)
		}
		if back.ID != rec.ID {
			t.Errorf("round trip id changed")
		}
	}
}

func TestDuplicateRate(t *testing.T) {
	recs := Generate(Config{Seed: 3, DuplicateRate: 0.3}, 500)
	dups := 0
	for _, r := range recs {
		for _, tag := range r.Tags {
			if tag == "redetermination" {
				dups++
				break
			}
		}
	}
	if dups < 100 || dups > 220 {
		t.Errorf("duplicates = %d out of 500, want ~150", dups)
	}
	// Zero rate yields none.
	for _, r := range Generate(Config{Seed: 3, DuplicateRate: 0}, 200) {
		for _, tag := range r.Tags {
			if tag == "redetermination" {
				t.Fatal("duplicate at rate 0")
			}
		}
	}
	// Negative rate selects the default.
	recsDefault := Generate(Config{Seed: 3, DuplicateRate: -1}, 300)
	dupsDefault := 0
	for _, r := range recsDefault {
		for _, tag := range r.Tags {
			if tag == "redetermination" {
				dupsDefault++
				break
			}
		}
	}
	if dupsDefault == 0 {
		t.Error("default duplicate rate produced none")
	}
}

func TestDuplicatesShareStructureNewSourceID(t *testing.T) {
	recs := Generate(Config{Seed: 11, DuplicateRate: 0.5}, 200)
	byFormula := make(map[string][]*crystalRecord)
	for _, r := range recs {
		f := r.Structure.Composition().Formula()
		byFormula[f] = append(byFormula[f], &crystalRecord{r.ID, r.SourceID})
	}
	foundGroup := false
	for _, group := range byFormula {
		if len(group) < 2 {
			continue
		}
		foundGroup = true
		seenIDs := map[string]bool{}
		seenSrc := map[string]bool{}
		for _, r := range group {
			if seenIDs[r.id] {
				t.Error("duplicate MPS id")
			}
			if seenSrc[r.src] {
				t.Error("duplicate source id")
			}
			seenIDs[r.id] = true
			seenSrc[r.src] = true
		}
	}
	if !foundGroup {
		t.Error("no duplicate groups generated at rate 0.5")
	}
}

type crystalRecord struct{ id, src string }

func TestChargeBalanceScreen(t *testing.T) {
	recs := Generate(Config{Seed: 5, RequireChargeBalance: true, DuplicateRate: 0}, 100)
	for _, r := range recs {
		if !r.Structure.Composition().ChargeBalanced() {
			t.Errorf("%s (%s) not charge balanced", r.ID, r.Structure.Composition().Formula())
		}
	}
}

func TestGenerateBatteryFrameworks(t *testing.T) {
	recs := GenerateBatteryFrameworks(42, 80)
	if len(recs) != 80 {
		t.Fatalf("got %d", len(recs))
	}
	for _, r := range recs {
		comp := r.Structure.Composition()
		if !comp.Contains("Li") && !comp.Contains("Na") {
			t.Errorf("%s lacks working ion: %s", r.ID, comp.Formula())
		}
		ok := false
		for _, tag := range r.Tags {
			if tag == "olivine" || tag == "layered" || tag == "spinel" {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s not a framework prototype: %v", r.ID, r.Tags)
		}
	}
}

func TestIDsAreSequentialAndUnique(t *testing.T) {
	recs := Generate(Config{Seed: 2, DuplicateRate: 0.2}, 100)
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("dup id %s", r.ID)
		}
		seen[r.ID] = true
	}
	if recs[0].ID != crystal.NewMPSID(1) {
		t.Errorf("first id = %s", recs[0].ID)
	}
}
