// Package hpc simulates the HPC environment the Materials Project ran on
// (NERSC-class): a cluster of worker nodes fronted by a batch queue with
// per-user queued-job limits, walltime enforcement that kills overrunning
// jobs, and the site policy that worker nodes cannot open outbound
// connections (so datastore traffic must flow through a proxy) — the
// §IV-A challenges.
//
// Time is virtual: the simulator is a discrete-event engine driven by a
// minute-resolution free clock, so "days" of VASP runtime execute in
// microseconds of real time. Task farming — one batch job executing many
// calculations back to back — falls out of the TaskSource abstraction and
// is the subject of the §IV-A1 ablation bench.
package hpc

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrQueueLimit is returned by Submit when the user already has the
// maximum number of jobs queued or running ("most HPC systems allow only
// a handful of queued jobs per user").
var ErrQueueLimit = errors.New("hpc: per-user queue limit reached")

// Task is one unit of work executed inside a batch job.
type Task struct {
	Name     string
	Duration time.Duration
	// OnDone fires when the task completes, with the virtual time.
	OnDone func(now time.Duration)
	// OnKilled fires when the job's walltime expires mid-task.
	OnKilled func(now time.Duration)
}

// TaskSource supplies a job's tasks one at a time. Next is called when
// the previous task finishes; returning ok=false ends the job. Sources
// may produce tasks dynamically (task farming pulls the next calculation
// from the datastore at runtime).
type TaskSource interface {
	Next(now time.Duration) (Task, bool)
}

// SliceSource is a TaskSource over a fixed task list.
type SliceSource struct {
	Tasks []Task
	pos   int
}

// Next implements TaskSource.
func (s *SliceSource) Next(time.Duration) (Task, bool) {
	if s.pos >= len(s.Tasks) {
		return Task{}, false
	}
	t := s.Tasks[s.pos]
	s.pos++
	return t, true
}

// FuncSource adapts a function to TaskSource.
type FuncSource func(now time.Duration) (Task, bool)

// Next implements TaskSource.
func (f FuncSource) Next(now time.Duration) (Task, bool) { return f(now) }

// Job is a batch submission: a walltime allocation during which its
// TaskSource's tasks run sequentially on one node.
type Job struct {
	ID       string
	User     string
	Walltime time.Duration
	Source   TaskSource
	// OnEnd fires when the job leaves the system (completed or killed).
	OnEnd func(now time.Duration, killed bool)
}

// JobState tracks a job through the queue.
type JobState int

const (
	// JobQueued means waiting for a node.
	JobQueued JobState = iota
	// JobRunning means executing on a node.
	JobRunning
	// JobCompleted means all tasks finished within walltime.
	JobCompleted
	// JobKilled means the walltime expired.
	JobKilled
)

// Stats aggregates cluster activity.
type Stats struct {
	JobsCompleted int
	JobsKilled    int
	TasksDone     int
	TasksKilled   int
	// WorkerCrashes counts injected node deaths (see WorkerFaults). A
	// crash is silent: unlike a walltime kill, the dying task gets no
	// callback, exactly like a real node failure.
	WorkerCrashes int
	// BusyTime is summed node-seconds of execution.
	BusyTime time.Duration
	// Makespan is the virtual time of the last processed event.
	Makespan time.Duration
}

// WorkerFaults lets a fault injector crash simulated workers mid-task.
// Implemented by *faults.Injector; declared here so the simulator stays
// free of test-harness imports.
type WorkerFaults interface {
	// CrashPoint is consulted once per started task. When crash is
	// true, the node dies at frac (in (0,1)) of the task's duration —
	// silently: no task callback fires, so whatever state the task was
	// maintaining elsewhere is left dangling, which is the point.
	CrashPoint() (frac float64, crash bool)
}

// Policy captures site connectivity rules (§IV-A2): worker nodes may not
// connect outside the system, so datastore access goes through a proxy on
// a login/midrange node.
type Policy struct {
	// WorkerOutbound reports whether compute nodes may open outbound
	// connections. False at NERSC-like sites.
	WorkerOutbound bool
	// ProxyHost is the host workers must relay through when
	// WorkerOutbound is false.
	ProxyHost string
}

// Cluster is the simulated machine.
type Cluster struct {
	nodes      int
	queueLimit int
	policy     Policy

	clock     time.Duration
	freeNodes int
	queue     []*runningJob
	perUser   map[string]int
	events    eventHeap
	seq       int
	stats     Stats
	faults    WorkerFaults
}

type runningJob struct {
	job      *Job
	started  time.Duration
	deadline time.Duration
	state    JobState
}

type event struct {
	at   time.Duration
	seq  int // FIFO tiebreak
	kind eventKind
	rj   *runningJob
	task Task
}

type eventKind int

const (
	evTaskDone eventKind = iota
	evWalltime
	evCrash
)

// NewCluster creates a cluster with the given node count and per-user
// queue limit (queued + running). A limit <= 0 means unlimited — the
// "advanced reservation" mode NERSC granted the project.
func NewCluster(nodes, queueLimit int, policy Policy) *Cluster {
	if nodes < 1 {
		nodes = 1
	}
	return &Cluster{
		nodes:      nodes,
		queueLimit: queueLimit,
		policy:     policy,
		freeNodes:  nodes,
		perUser:    make(map[string]int),
	}
}

// Policy returns the site connectivity policy.
func (c *Cluster) Policy() Policy { return c.policy }

// Now returns the virtual clock.
func (c *Cluster) Now() time.Duration { return c.clock }

// AdvanceTo moves the virtual clock forward to t (no-op when t is in
// the past). Intended for an idle cluster — e.g. to wait out a lease
// expiry or backoff window between submission rounds; with events
// pending it would make them fire late.
func (c *Cluster) AdvanceTo(t time.Duration) {
	if t > c.clock {
		c.clock = t
	}
}

// InjectFaults installs a worker-crash fault injector (chaos testing).
// Passing nil removes it.
func (c *Cluster) InjectFaults(f WorkerFaults) { c.faults = f }

// Stats returns a snapshot of activity counters.
func (c *Cluster) Stats() Stats {
	s := c.stats
	s.Makespan = c.clock
	return s
}

// QueueLimit returns the current per-user limit (<=0 means unlimited).
func (c *Cluster) QueueLimit() int { return c.queueLimit }

// SetQueueLimit adjusts the per-user limit, modelling an advanced
// reservation that "temporarily suspended these limits".
func (c *Cluster) SetQueueLimit(n int) { c.queueLimit = n }

// QueuedOrRunning reports the user's jobs currently in the system.
func (c *Cluster) QueuedOrRunning(user string) int { return c.perUser[user] }

// Submit enqueues a job, enforcing the per-user limit.
func (c *Cluster) Submit(job *Job) error {
	if job == nil || job.Source == nil {
		return fmt.Errorf("hpc: job must have a task source")
	}
	if job.Walltime <= 0 {
		return fmt.Errorf("hpc: job %q needs a positive walltime", job.ID)
	}
	if c.queueLimit > 0 && c.perUser[job.User] >= c.queueLimit {
		return fmt.Errorf("%w: user %q has %d jobs", ErrQueueLimit, job.User, c.perUser[job.User])
	}
	rj := &runningJob{job: job, state: JobQueued}
	c.perUser[job.User]++
	c.queue = append(c.queue, rj)
	c.dispatch()
	return nil
}

// dispatch starts queued jobs on free nodes (FIFO).
func (c *Cluster) dispatch() {
	for c.freeNodes > 0 && len(c.queue) > 0 {
		rj := c.queue[0]
		c.queue = c.queue[1:]
		c.freeNodes--
		rj.state = JobRunning
		rj.started = c.clock
		rj.deadline = c.clock + rj.job.Walltime
		c.startNextTask(rj)
	}
}

// startNextTask pulls the next task for a running job and schedules its
// completion or the walltime kill, whichever comes first.
func (c *Cluster) startNextTask(rj *runningJob) {
	task, ok := rj.job.Source.Next(c.clock)
	if !ok {
		c.finishJob(rj, false)
		return
	}
	if task.Duration < 0 {
		task.Duration = 0
	}
	end := c.clock + task.Duration
	// Injected node death: the crash wins only if it lands before both
	// the task's natural end and the walltime kill.
	if c.faults != nil {
		if frac, crash := c.faults.CrashPoint(); crash {
			crashAt := c.clock + time.Duration(frac*float64(task.Duration))
			if crashAt < end && crashAt < rj.deadline {
				c.push(event{at: crashAt, kind: evCrash, rj: rj, task: task})
				return
			}
		}
	}
	if end > rj.deadline {
		// The task will be cut down by the walltime kill.
		c.push(event{at: rj.deadline, kind: evWalltime, rj: rj, task: task})
		return
	}
	c.push(event{at: end, kind: evTaskDone, rj: rj, task: task})
}

func (c *Cluster) finishJob(rj *runningJob, killed bool) {
	if killed {
		rj.state = JobKilled
		c.stats.JobsKilled++
	} else {
		rj.state = JobCompleted
		c.stats.JobsCompleted++
	}
	c.stats.BusyTime += c.clock - rj.started
	c.perUser[rj.job.User]--
	c.freeNodes++
	if rj.job.OnEnd != nil {
		rj.job.OnEnd(c.clock, killed)
	}
	c.dispatch()
}

func (c *Cluster) push(e event) {
	e.seq = c.seq
	c.seq++
	heap.Push(&c.events, e)
}

// Step processes one event, returning false when the system is idle.
func (c *Cluster) Step() bool {
	if c.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&c.events).(event)
	c.clock = e.at
	switch e.kind {
	case evTaskDone:
		c.stats.TasksDone++
		if e.task.OnDone != nil {
			e.task.OnDone(c.clock)
		}
		c.startNextTask(e.rj)
	case evWalltime:
		c.stats.TasksKilled++
		if e.task.OnKilled != nil {
			e.task.OnKilled(c.clock)
		}
		c.finishJob(e.rj, true)
	case evCrash:
		// Silent death: neither OnDone nor OnKilled fires — the worker
		// vanished without reporting. Only the batch system notices the
		// job is gone (OnEnd via finishJob).
		c.stats.WorkerCrashes++
		c.finishJob(e.rj, true)
	}
	return true
}

// RunAll processes events until the cluster is idle.
func (c *Cluster) RunAll() {
	for c.Step() {
	}
}

// Idle reports whether no events are pending and no jobs are queued.
func (c *Cluster) Idle() bool { return c.events.Len() == 0 && len(c.queue) == 0 }

// eventHeap is a min-heap on (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
