package hpc

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func simpleJob(id, user string, wall time.Duration, durations ...time.Duration) *Job {
	tasks := make([]Task, len(durations))
	for i, d := range durations {
		tasks[i] = Task{Name: fmt.Sprintf("%s-t%d", id, i), Duration: d}
	}
	return &Job{ID: id, User: user, Walltime: wall, Source: &SliceSource{Tasks: tasks}}
}

func TestSingleJobRunsToCompletion(t *testing.T) {
	c := NewCluster(2, 10, Policy{})
	var doneAt time.Duration
	var killed bool
	job := simpleJob("j1", "u", time.Hour, 10*time.Minute, 20*time.Minute)
	job.OnEnd = func(now time.Duration, k bool) { doneAt, killed = now, k }
	if err := c.Submit(job); err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if killed {
		t.Error("job killed")
	}
	if doneAt != 30*time.Minute {
		t.Errorf("doneAt = %v", doneAt)
	}
	st := c.Stats()
	if st.JobsCompleted != 1 || st.TasksDone != 2 || st.TasksKilled != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.BusyTime != 30*time.Minute {
		t.Errorf("busy = %v", st.BusyTime)
	}
}

func TestWalltimeKillMidTask(t *testing.T) {
	c := NewCluster(1, 10, Policy{})
	var killedTask string
	var jobKilled bool
	job := &Job{
		ID: "j", User: "u", Walltime: 25 * time.Minute,
		Source: &SliceSource{Tasks: []Task{
			{Name: "a", Duration: 10 * time.Minute},
			{Name: "b", Duration: 30 * time.Minute, OnKilled: func(time.Duration) { killedTask = "b" }},
		}},
		OnEnd: func(_ time.Duration, k bool) { jobKilled = k },
	}
	c.Submit(job)
	c.RunAll()
	if !jobKilled {
		t.Error("job should be killed")
	}
	if killedTask != "b" {
		t.Errorf("killed task = %q", killedTask)
	}
	st := c.Stats()
	if st.TasksDone != 1 || st.TasksKilled != 1 || st.JobsKilled != 1 {
		t.Errorf("stats = %+v", st)
	}
	if c.Now() != 25*time.Minute {
		t.Errorf("clock = %v", c.Now())
	}
}

func TestQueueLimitEnforced(t *testing.T) {
	c := NewCluster(1, 2, Policy{})
	if err := c.Submit(simpleJob("a", "alice", time.Hour, time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(simpleJob("b", "alice", time.Hour, time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(simpleJob("c", "alice", time.Hour, time.Hour)); !errors.Is(err, ErrQueueLimit) {
		t.Errorf("err = %v", err)
	}
	// Other users unaffected.
	if err := c.Submit(simpleJob("d", "bob", time.Hour, time.Hour)); err != nil {
		t.Fatal(err)
	}
	if c.QueuedOrRunning("alice") != 2 {
		t.Errorf("alice jobs = %d", c.QueuedOrRunning("alice"))
	}
	// After jobs drain, the user may submit again.
	c.RunAll()
	if err := c.Submit(simpleJob("e", "alice", time.Hour, time.Minute)); err != nil {
		t.Errorf("post-drain submit: %v", err)
	}
}

func TestQueueLimitLiftedByReservation(t *testing.T) {
	c := NewCluster(4, 1, Policy{})
	c.Submit(simpleJob("a", "u", time.Hour, time.Minute))
	if err := c.Submit(simpleJob("b", "u", time.Hour, time.Minute)); !errors.Is(err, ErrQueueLimit) {
		t.Fatal("limit not enforced")
	}
	c.SetQueueLimit(0) // reservation: unlimited
	for i := 0; i < 50; i++ {
		if err := c.Submit(simpleJob(fmt.Sprintf("r%d", i), "u", time.Hour, time.Minute)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	c.RunAll()
	if got := c.Stats().JobsCompleted; got != 51 {
		t.Errorf("completed = %d", got)
	}
	if c.QueueLimit() != 0 {
		t.Error("limit readback wrong")
	}
}

func TestFIFOAcrossNodes(t *testing.T) {
	c := NewCluster(2, 0, Policy{})
	var order []string
	mk := func(id string, d time.Duration) *Job {
		j := simpleJob(id, "u", time.Hour, d)
		j.OnEnd = func(time.Duration, bool) { order = append(order, id) }
		return j
	}
	// Two nodes: a and b start immediately; c starts when a (10m) frees.
	c.Submit(mk("a", 10*time.Minute))
	c.Submit(mk("b", 30*time.Minute))
	c.Submit(mk("c", 5*time.Minute))
	c.RunAll()
	want := []string{"a", "c", "b"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order = %v, want %v", order, want)
			break
		}
	}
	if c.Now() != 30*time.Minute {
		t.Errorf("makespan = %v", c.Now())
	}
}

func TestTaskFarmingBeatsSingleTaskJobsUnderQueueLimit(t *testing.T) {
	const nTasks = 60
	taskDur := 10 * time.Minute

	// Mode A: one task per job, queue limit 4 — resubmission loop.
	single := NewCluster(8, 4, Policy{})
	submitted := 0
	trySubmit := func() {
		for submitted < nTasks {
			err := single.Submit(simpleJob(fmt.Sprintf("s%d", submitted), "u", time.Hour, taskDur))
			if errors.Is(err, ErrQueueLimit) {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			submitted++
		}
	}
	trySubmit()
	for !single.Idle() || submitted < nTasks {
		if !single.Step() && submitted >= nTasks {
			break
		}
		trySubmit()
	}
	singleSpan := single.Stats().Makespan

	// Mode B: task farming — 4 jobs, each farms 15 tasks.
	farm := NewCluster(8, 4, Policy{})
	for j := 0; j < 4; j++ {
		durations := make([]time.Duration, nTasks/4)
		for i := range durations {
			durations[i] = taskDur
		}
		if err := farm.Submit(simpleJob(fmt.Sprintf("f%d", j), "u", 10*time.Hour, durations...)); err != nil {
			t.Fatal(err)
		}
	}
	farm.RunAll()
	farmSpan := farm.Stats().Makespan

	if farm.Stats().TasksDone != nTasks || single.Stats().TasksDone != nTasks {
		t.Fatalf("tasks done: farm=%d single=%d", farm.Stats().TasksDone, single.Stats().TasksDone)
	}
	// Farming keeps 4 nodes busy continuously: 15 tasks * 10m = 150m.
	if farmSpan != 150*time.Minute {
		t.Errorf("farm makespan = %v", farmSpan)
	}
	// Single-task jobs can never run more than 4 at once either, but pay
	// nothing extra here since resubmission is instant in virtual time;
	// the advantage appears with the queue limit < nodes.
	if farmSpan > singleSpan {
		t.Errorf("farming (%v) should not be slower than single (%v)", farmSpan, singleSpan)
	}
}

func TestFuncSourceDynamicTasks(t *testing.T) {
	c := NewCluster(1, 0, Policy{})
	n := 0
	src := FuncSource(func(now time.Duration) (Task, bool) {
		if n >= 3 {
			return Task{}, false
		}
		n++
		return Task{Duration: time.Duration(n) * time.Minute}, true
	})
	c.Submit(&Job{ID: "dyn", User: "u", Walltime: time.Hour, Source: src})
	c.RunAll()
	if c.Stats().TasksDone != 3 {
		t.Errorf("tasks = %d", c.Stats().TasksDone)
	}
	if c.Now() != 6*time.Minute {
		t.Errorf("clock = %v", c.Now())
	}
}

func TestSubmitValidation(t *testing.T) {
	c := NewCluster(1, 0, Policy{})
	if err := c.Submit(nil); err == nil {
		t.Error("nil job accepted")
	}
	if err := c.Submit(&Job{ID: "x", Walltime: time.Hour}); err == nil {
		t.Error("source-less job accepted")
	}
	if err := c.Submit(simpleJob("x", "u", 0, time.Minute)); err == nil {
		t.Error("zero walltime accepted")
	}
}

func TestPolicyExposed(t *testing.T) {
	c := NewCluster(1, 0, Policy{WorkerOutbound: false, ProxyHost: "login01"})
	p := c.Policy()
	if p.WorkerOutbound || p.ProxyHost != "login01" {
		t.Errorf("policy = %+v", p)
	}
}

func TestZeroDurationTask(t *testing.T) {
	c := NewCluster(1, 0, Policy{})
	ran := false
	c.Submit(&Job{ID: "z", User: "u", Walltime: time.Minute, Source: &SliceSource{Tasks: []Task{
		{Duration: -5, OnDone: func(time.Duration) { ran = true }},
	}}})
	c.RunAll()
	if !ran {
		t.Error("negative-duration task should clamp to 0 and run")
	}
}

func TestEmptyJobCompletesImmediately(t *testing.T) {
	c := NewCluster(1, 0, Policy{})
	done := false
	c.Submit(&Job{ID: "e", User: "u", Walltime: time.Minute, Source: &SliceSource{},
		OnEnd: func(_ time.Duration, killed bool) { done = !killed }})
	c.RunAll()
	if !done {
		t.Error("empty job should complete")
	}
	if c.Stats().JobsCompleted != 1 {
		t.Error("not counted")
	}
}

type crashAlways struct{ frac float64 }

func (c crashAlways) CrashPoint() (float64, bool) { return c.frac, true }

func TestInjectedCrashIsSilent(t *testing.T) {
	c := NewCluster(1, 0, Policy{})
	c.InjectFaults(crashAlways{frac: 0.5})
	var doneCalled, killedCalled bool
	endKilled := false
	c.Submit(&Job{ID: "j", User: "u", Walltime: time.Hour, Source: &SliceSource{Tasks: []Task{{
		Duration: 10 * time.Minute,
		OnDone:   func(time.Duration) { doneCalled = true },
		OnKilled: func(time.Duration) { killedCalled = true },
	}}}, OnEnd: func(_ time.Duration, killed bool) { endKilled = killed }})
	c.RunAll()
	if doneCalled || killedCalled {
		t.Errorf("crash must be silent: OnDone=%v OnKilled=%v", doneCalled, killedCalled)
	}
	if !endKilled {
		t.Error("batch system should see the job as killed")
	}
	st := c.Stats()
	if st.WorkerCrashes != 1 || st.JobsKilled != 1 || st.TasksDone != 0 {
		t.Errorf("stats: %+v", st)
	}
	// The crash fires mid-task: at 50% of 10 minutes.
	if c.Now() != 5*time.Minute {
		t.Errorf("clock %v, want 5m", c.Now())
	}
	// The node is free again for new work.
	ran := false
	c.InjectFaults(nil)
	c.Submit(&Job{ID: "j2", User: "u", Walltime: time.Hour, Source: &SliceSource{Tasks: []Task{{
		Duration: time.Minute, OnDone: func(time.Duration) { ran = true },
	}}}})
	c.RunAll()
	if !ran {
		t.Error("node not released after crash")
	}
}

func TestCrashAfterWalltimeDeadlineFallsBackToKill(t *testing.T) {
	// Crash point lands beyond the walltime: the ordinary kill wins and
	// the task IS notified.
	c := NewCluster(1, 0, Policy{})
	c.InjectFaults(crashAlways{frac: 0.9})
	killed := false
	c.Submit(&Job{ID: "j", User: "u", Walltime: 30 * time.Minute, Source: &SliceSource{Tasks: []Task{{
		Duration: time.Hour,
		OnKilled: func(time.Duration) { killed = true },
	}}}})
	c.RunAll()
	if !killed {
		t.Error("walltime kill should fire when crash lands past the deadline")
	}
	if st := c.Stats(); st.WorkerCrashes != 0 || st.TasksKilled != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestAdvanceTo(t *testing.T) {
	c := NewCluster(1, 0, Policy{})
	c.AdvanceTo(2 * time.Hour)
	if c.Now() != 2*time.Hour {
		t.Errorf("clock %v", c.Now())
	}
	c.AdvanceTo(time.Hour) // backwards is a no-op
	if c.Now() != 2*time.Hour {
		t.Errorf("clock went backwards: %v", c.Now())
	}
	// New work starts at the advanced clock.
	var startedAt time.Duration
	c.Submit(&Job{ID: "j", User: "u", Walltime: time.Hour, Source: &SliceSource{Tasks: []Task{{
		Duration: time.Minute, OnDone: func(now time.Duration) { startedAt = now },
	}}}})
	c.RunAll()
	if startedAt != 2*time.Hour+time.Minute {
		t.Errorf("task finished at %v", startedAt)
	}
}
