package restapi

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"matproj/internal/cluster"
	"matproj/internal/datastore"
	"matproj/internal/obs"
	"matproj/internal/pipeline"
	"matproj/internal/queryengine"
)

// newRoutedEngine stands the test corpus up on a networked 2-shard × 2-
// member cluster and returns an engine fronting the router, so the REST
// API serves over the wire transport instead of a local store.
func newRoutedEngine(t *testing.T, store *datastore.Store, opts ...queryengine.Option) *queryengine.Engine {
	t.Helper()
	reg := obs.NewRegistry()
	var groups [][]string
	for gi := 0; gi < 2; gi++ {
		var urls []string
		for mi := 0; mi < 2; mi++ {
			n := cluster.NewNode(fmt.Sprintf("node-%d-%d", gi, mi), datastore.MustOpenMemory(), reg)
			srv := httptest.NewServer(n)
			t.Cleanup(srv.Close)
			urls = append(urls, srv.URL)
		}
		groups = append(groups, urls)
	}
	router, err := cluster.NewRouter(cluster.RouterOptions{Groups: groups, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	if _, err := pipeline.CopyCollections(router, store); err != nil {
		t.Fatal(err)
	}
	return queryengine.NewWithBackend(router, opts...)
}

// TestMaterialsAPISuiteRouted re-points the entire Materials API test
// suite at a routed backend: every testServer in the suite builds a
// router fronting 2 networked shard groups (2 members each) and the same
// assertions must hold — the dissemination layer cannot tell a local
// store from a cluster.
func TestMaterialsAPISuiteRouted(t *testing.T) {
	t.Setenv("RESTAPI_BACKEND", "routed")
	t.Run("Fig4URI", TestFig4URI)
	t.Run("MaterialsByIDChemsysAndAll", TestMaterialsByIDChemsysAndAll)
	t.Run("MaterialsErrors", TestMaterialsErrors)
	t.Run("AuthRequired", TestAuthRequired)
	t.Run("SignupDelegation", TestSignupDelegation)
	t.Run("QueryEndpointSanitized", TestQueryEndpointSanitized)
	t.Run("DerivedCollections", TestDerivedCollections)
	t.Run("BatteriesEndpoint", TestBatteriesEndpoint)
	t.Run("RateLimitReturns429", TestRateLimitReturns429)
	t.Run("ResponseEnvelopeShape", TestResponseEnvelopeShape)
	t.Run("AggregateEndpoint", TestAggregateEndpoint)
	t.Run("InsertManyEndpoint", TestInsertManyEndpoint)
	t.Run("BulkWriteEndpoint", TestBulkWriteEndpoint)
}

// TestRoutedBackendUnavailable: with every shard member down, the API
// must answer 503 (the retryable signal mpclient keys on), not blame the
// caller with a 400.
func TestRoutedBackendUnavailable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	router, err := cluster.NewRouter(cluster.RouterOptions{Groups: [][]string{{dead.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	store := newTestStore(t)
	eng := queryengine.NewWithBackend(router)
	srv := httptest.NewServer(NewServer(eng, NewAuth(store), store))
	t.Cleanup(srv.Close)
	auth := NewAuth(store)
	key, err := auth.Signup("google", "alice@example.com")
	if err != nil {
		t.Fatal(err)
	}

	status, env := get(t, srv, key, "/rest/v1/materials/Fe2O3/vasp/energy")
	if status != http.StatusServiceUnavailable || env.Valid {
		t.Fatalf("dead cluster: status=%d env=%+v, want 503", status, env)
	}
}
