package restapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"matproj/internal/crystal"
	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/obs"
	"matproj/internal/queryengine"
)

// propertyFields maps API property names to stored material fields.
var propertyFields = map[string]string{
	"energy":          "final_energy",
	"energy_per_atom": "e_per_atom",
	"band_gap":        "band_gap",
	"bandgap":         "band_gap",
	"density":         "density",
	"structure":       "structure",
	"formula":         "pretty_formula",
	"nsites":          "nsites",
	"nelements":       "nelements",
	"nelectrons":      "nelectrons",
	"elements":        "elements",
	"functional":      "functional",
}

// DefaultMaxBodyBytes caps request bodies when Server.MaxBodyBytes is
// left zero: large enough for bulk ingest batches, small enough that a
// single request cannot balloon server memory.
const DefaultMaxBodyBytes = 8 << 20

// Server is the Materials API HTTP handler.
type Server struct {
	Engine *queryengine.Engine
	Auth   *Auth
	Store  *datastore.Store
	// MaterialsCollection is the logical collection served (default
	// "materials").
	MaterialsCollection string
	// MaxBodyBytes bounds every request body (default
	// DefaultMaxBodyBytes; negative disables the cap). Oversized bodies
	// get a 413 in the standard envelope and count in
	// http.body_rejected. Set before serving traffic.
	MaxBodyBytes int64
	mux          *http.ServeMux
	start        time.Time

	// Live observability (nil when not wired via Observe). The
	// middleware records per-endpoint status and latency; /metrics and
	// /status expose the registry, slow-query log, and store totals.
	obsReg atomic.Pointer[obs.Registry]
	obsTr  atomic.Pointer[obs.Tracer]
}

// NewServer builds the API server over an engine and store.
func NewServer(engine *queryengine.Engine, auth *Auth, store *datastore.Store) *Server {
	s := &Server{
		Engine:              engine,
		Auth:                auth,
		Store:               store,
		MaterialsCollection: "materials",
		//lint:ignore clockdiscipline /metrics uptime reports real wall-clock age by design
		start: time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /auth/signup", s.instrument("signup", s.handleSignup))
	mux.HandleFunc("GET /rest/v1/materials/", s.instrument("materials", s.handleMaterials))
	mux.HandleFunc("POST /rest/v1/query", s.instrument("query", s.handleQuery))
	mux.HandleFunc("POST /rest/v1/insert", s.instrument("insert", s.handleInsert))
	mux.HandleFunc("POST /rest/v1/insertMany", s.instrument("insertMany", s.handleInsertMany))
	mux.HandleFunc("POST /rest/v1/bulkWrite", s.instrument("bulkWrite", s.handleBulkWrite))
	mux.HandleFunc("POST /rest/v1/aggregate", s.instrument("aggregate", s.handleAggregate))
	mux.HandleFunc("GET /rest/v1/bandstructure/", s.instrument("bandstructure", s.handleDerived("bandstructures")))
	mux.HandleFunc("GET /rest/v1/xrd/", s.instrument("xrd", s.handleDerived("xrd")))
	mux.HandleFunc("GET /rest/v1/batteries", s.instrument("batteries", s.handleBatteries))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /status", s.handleStatus)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiResponse is the standard envelope.
type apiResponse struct {
	Valid    bool   `json:"valid_response"`
	Error    string `json:"error,omitempty"`
	Response []any  `json:"response"`
	NResults int    `json:"num_results"`
}

func writeJSON(w http.ResponseWriter, status int, resp apiResponse) {
	if resp.Response == nil {
		resp.Response = []any{}
	}
	resp.NResults = len(resp.Response)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiResponse{Valid: false, Error: fmt.Sprintf(format, args...)})
}

// writeDecodeErr maps a request-body decode failure to the envelope: a
// body that blew past MaxBodyBytes is 413 Content Too Large (and counts
// in http.body_rejected); anything else is plain bad JSON.
func (s *Server) writeDecodeErr(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		s.obsReg.Load().Counter("http.body_rejected").Inc()
		writeErr(w, http.StatusRequestEntityTooLarge,
			"request body exceeds %d byte limit", tooBig.Limit)
		return
	}
	writeErr(w, http.StatusBadRequest, "invalid JSON body: %v", err)
}

// maxBodyBytes resolves the configured body cap: zero means the
// default, negative disables it.
func (s *Server) maxBodyBytes() int64 {
	if s.MaxBodyBytes == 0 {
		return DefaultMaxBodyBytes
	}
	if s.MaxBodyBytes < 0 {
		return 0
	}
	return s.MaxBodyBytes
}

// authenticate resolves the API key on a request. Empty email plus false
// means the response has already been written.
func (s *Server) authenticate(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.Header.Get("X-API-KEY")
	if key == "" {
		key = r.URL.Query().Get("API_KEY")
	}
	email, ok := s.Auth.Lookup(key)
	if !ok {
		s.obsReg.Load().Counter("http.auth_failures").Inc()
		writeErr(w, http.StatusUnauthorized, "missing or invalid API key")
		return "", false
	}
	return email, true
}

func (s *Server) handleSignup(w http.ResponseWriter, r *http.Request) {
	provider := r.URL.Query().Get("provider")
	email := r.URL.Query().Get("email")
	key, err := s.Auth.Signup(provider, email)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, apiResponse{Valid: true,
		Response: []any{map[string]any{"api_key": key, "email": email}}})
}

// handleMaterials serves /rest/v1/materials/{identifier}/vasp[/{property}]
// — Fig. 4's URI anatomy: preamble, version, application id (identifier),
// datatype (vasp), property.
func (s *Server) handleMaterials(w http.ResponseWriter, r *http.Request) {
	email, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/rest/v1/materials/")
	parts := strings.Split(strings.Trim(rest, "/"), "/")
	if len(parts) < 2 || parts[1] != "vasp" {
		writeErr(w, http.StatusBadRequest, "expected /rest/v1/materials/{id}/vasp[/{property}]")
		return
	}
	identifier := parts[0]
	property := ""
	if len(parts) >= 3 {
		property = parts[2]
	}
	filter, err := identifierFilter(identifier)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.replyNotModified(w, r, s.MaterialsCollection) {
		return
	}
	docs, err := s.Engine.Find(email, s.MaterialsCollection, filter, stalenessOpts(r))
	if err != nil {
		s.writeEngineErr(w, err)
		return
	}
	if len(docs) == 0 {
		writeErr(w, http.StatusNotFound, "no materials match %q", identifier)
		return
	}
	var out []any
	for _, d := range docs {
		row := map[string]any{"material_id": d["_id"]}
		if property == "" || property == "all" {
			for name, field := range propertyFields {
				if v, ok := d.Get(field); ok {
					row[name] = v
				}
			}
		} else {
			field, known := propertyFields[property]
			if !known {
				writeErr(w, http.StatusBadRequest, "unknown property %q", property)
				return
			}
			v, ok := d.Get(field)
			if !ok {
				continue
			}
			row[property] = v
		}
		out = append(out, row)
	}
	writeJSON(w, http.StatusOK, apiResponse{Valid: true, Response: out})
}

// identifierFilter interprets a material identifier: a material id
// ("mat-..."), a chemical system ("Li-Fe-O"), or a formula ("Fe2O3").
func identifierFilter(identifier string) (document.D, error) {
	switch {
	case strings.HasPrefix(identifier, "mat-"):
		return document.D{"_id": identifier}, nil
	case strings.Contains(identifier, "-"):
		// Chemical-system search: materials whose element set is a subset
		// of the named system (Li-Fe-O includes Fe-O and elemental Fe
		// materials, matching the production API's chemsys semantics).
		var set []any
		for _, e := range strings.Split(identifier, "-") {
			if !crystal.IsElement(e) {
				return nil, fmt.Errorf("restapi: unknown element %q in chemical system", e)
			}
			set = append(set, e)
		}
		return document.D{
			"elements": document.D{"$exists": true},
			"$nor": []any{map[string]any{
				"elements": map[string]any{"$elemMatch": map[string]any{"$nin": set}},
			}},
		}, nil
	default:
		comp, err := crystal.ParseFormula(identifier)
		if err != nil {
			return nil, fmt.Errorf("restapi: identifier %q is neither id, chemsys, nor formula", identifier)
		}
		return document.D{"pretty_formula": comp.Formula()}, nil
	}
}

// queryRequest is the POST /rest/v1/query body: criteria in the Mongo
// query language plus an optional property projection, mirroring the
// real Materials API's query endpoint. MaxStaleness (generations)
// opts the read into bounded-staleness follower routing on a cluster:
// the answer may lag the newest acknowledged write by at most that
// many write generations. 0 keeps the read on primaries.
// Explain flips the request into plan-only mode: the response carries
// the query planner's decision (chosen index, bounds, residual filter)
// instead of documents — equivalent to putting $explain in the criteria.
// Hint names an index the planner must use (diagnostics; the result set
// is identical either way).
type queryRequest struct {
	Criteria     map[string]any `json:"criteria"`
	Properties   []string       `json:"properties"`
	Limit        int            `json:"limit"`
	Skip         int            `json:"skip"`
	Sort         []string       `json:"sort"`
	MaxStaleness int            `json:"max_staleness"`
	Explain      bool           `json:"explain"`
	Hint         string         `json:"hint"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	email, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeDecodeErr(w, err)
		return
	}
	opts := &datastore.FindOpts{Limit: req.Limit, Skip: req.Skip, Sort: req.Sort, MaxStaleness: req.MaxStaleness, Hint: req.Hint}
	if len(req.Properties) > 0 {
		proj := document.D{}
		for _, p := range req.Properties {
			field := p
			if f, known := propertyFields[p]; known {
				field = f
			}
			proj[field] = 1
		}
		opts.Projection = proj
	}
	if req.Explain {
		plan, err := s.Engine.Explain(email, s.MaterialsCollection, document.D(req.Criteria), opts)
		if err != nil {
			s.writeEngineErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, apiResponse{Valid: true, Response: []any{map[string]any(plan)}})
		return
	}
	docs, err := s.Engine.Find(email, s.MaterialsCollection, document.D(req.Criteria), opts)
	if err != nil {
		s.writeEngineErr(w, err)
		return
	}
	out := make([]any, len(docs))
	for i, d := range docs {
		out[i] = map[string]any(d)
	}
	writeJSON(w, http.StatusOK, apiResponse{Valid: true, Response: out})
}

// stalenessOpts reads the max_staleness query parameter (generations)
// from a GET request into find options; nil when absent or invalid, so
// the default stays an exact primary read.
func stalenessOpts(r *http.Request) *datastore.FindOpts {
	raw := r.URL.Query().Get("max_staleness")
	if raw == "" {
		return nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k <= 0 {
		return nil
	}
	return &datastore.FindOpts{MaxStaleness: k}
}

// insertRequest is the POST /rest/v1/insert body. Collection defaults
// to the server's materials collection.
type insertRequest struct {
	Collection string         `json:"collection"`
	Doc        map[string]any `json:"doc"`
}

// handleInsert writes one document through the engine (and so through
// the router on a cluster). It exists for load harnesses and ingest
// tooling — the staleness-probe writer in the failover smoke uses it —
// and requires the same API-key auth as every other endpoint.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	email, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeDecodeErr(w, err)
		return
	}
	if len(req.Doc) == 0 {
		writeErr(w, http.StatusBadRequest, "doc required")
		return
	}
	collection := req.Collection
	if collection == "" {
		collection = s.MaterialsCollection
	}
	id, err := s.Engine.Insert(email, collection, document.NormalizeDoc(document.D(req.Doc)))
	if err != nil {
		s.writeEngineErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, apiResponse{Valid: true,
		Response: []any{map[string]any{"_id": id}}})
}

// insertManyRequest is the POST /rest/v1/insertMany body: a document
// batch written in one call. The whole batch rides a single collection
// lock and (on a durable store) a single group-commit fsync per shard,
// which is the fast path for bulk ingest.
type insertManyRequest struct {
	Collection string           `json:"collection"`
	Docs       []map[string]any `json:"docs"`
}

// handleInsertMany writes a batch of documents atomically per shard.
// The response rows are {"_id": ...} in input order.
func (s *Server) handleInsertMany(w http.ResponseWriter, r *http.Request) {
	email, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	var req insertManyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeDecodeErr(w, err)
		return
	}
	if len(req.Docs) == 0 {
		writeErr(w, http.StatusBadRequest, "docs required")
		return
	}
	collection := req.Collection
	if collection == "" {
		collection = s.MaterialsCollection
	}
	docs := make([]document.D, len(req.Docs))
	for i, d := range req.Docs {
		docs[i] = document.NormalizeDoc(document.D(d))
	}
	ids, err := s.Engine.InsertMany(email, collection, docs)
	if err != nil {
		s.writeEngineErr(w, err)
		return
	}
	out := make([]any, len(ids))
	for i, id := range ids {
		out[i] = map[string]any{"_id": id}
	}
	writeJSON(w, http.StatusOK, apiResponse{Valid: true, Response: out})
}

// bulkWriteRequest is the POST /rest/v1/bulkWrite body: a mixed batch
// of insert/updateOne/updateMany/delete operations applied
// continue-on-error, with a per-op outcome row in the response.
type bulkWriteRequest struct {
	Collection string       `json:"collection"`
	Ops        []bulkWireOp `json:"ops"`
}

// bulkWireOp is one operation in a bulkWrite request.
type bulkWireOp struct {
	Op     string         `json:"op"`
	Doc    map[string]any `json:"doc,omitempty"`
	Filter map[string]any `json:"filter,omitempty"`
	Update map[string]any `json:"update,omitempty"`
}

// handleBulkWrite applies a mixed write batch. Each response row mirrors
// one input op: {"op", "id"?, "matched", "modified", "removed",
// "error"?}. The envelope stays valid even when individual ops fail —
// callers inspect rows for per-op errors.
func (s *Server) handleBulkWrite(w http.ResponseWriter, r *http.Request) {
	email, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	var req bulkWriteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeDecodeErr(w, err)
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, http.StatusBadRequest, "ops required")
		return
	}
	collection := req.Collection
	if collection == "" {
		collection = s.MaterialsCollection
	}
	ops := make([]datastore.BulkOp, len(req.Ops))
	for i, op := range req.Ops {
		ops[i] = datastore.BulkOp{
			Op:     op.Op,
			Doc:    document.D(op.Doc),
			Filter: document.D(op.Filter),
			Update: document.D(op.Update),
		}
	}
	res, err := s.Engine.BulkWrite(email, collection, ops)
	if err != nil {
		s.writeEngineErr(w, err)
		return
	}
	out := make([]any, len(res.PerOp))
	for i, op := range res.PerOp {
		row := map[string]any{
			"op":       req.Ops[i].Op,
			"matched":  op.Matched,
			"modified": op.Modified,
			"removed":  op.Removed,
		}
		if op.ID != "" {
			row["id"] = op.ID
		}
		if op.Error != "" {
			row["error"] = op.Error
		}
		out[i] = row
	}
	writeJSON(w, http.StatusOK, apiResponse{Valid: true, Response: out})
}

// aggregateRequest is the POST /rest/v1/aggregate body.
type aggregateRequest struct {
	Pipeline []map[string]any `json:"pipeline"`
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	email, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	var req aggregateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeDecodeErr(w, err)
		return
	}
	if len(req.Pipeline) == 0 {
		writeErr(w, http.StatusBadRequest, "pipeline required")
		return
	}
	stages := make([]document.D, len(req.Pipeline))
	for i, st := range req.Pipeline {
		stages[i] = document.D(st)
	}
	docs, err := s.Engine.Aggregate(email, s.MaterialsCollection, stages)
	if err != nil {
		s.writeEngineErr(w, err)
		return
	}
	out := make([]any, len(docs))
	for i, d := range docs {
		out[i] = map[string]any(d)
	}
	writeJSON(w, http.StatusOK, apiResponse{Valid: true, Response: out})
}

// handleDerived serves per-material derived-property collections
// (bandstructures, xrd) by material id.
func (s *Server) handleDerived(collection string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		email, ok := s.authenticate(w, r)
		if !ok {
			return
		}
		// Path prefixes registered: /rest/v1/bandstructure/, /rest/v1/xrd/
		// — the singular of the collection name.
		prefix := "/rest/v1/" + strings.TrimSuffix(collection, "s") + "/"
		id := strings.Trim(strings.TrimPrefix(r.URL.Path, prefix), "/")
		if id == "" {
			writeErr(w, http.StatusBadRequest, "material id required")
			return
		}
		if s.replyNotModified(w, r, collection) {
			return
		}
		docs, err := s.Engine.Find(email, collection, document.D{"material_id": id}, stalenessOpts(r))
		if err != nil {
			s.writeEngineErr(w, err)
			return
		}
		if len(docs) == 0 {
			writeErr(w, http.StatusNotFound, "no %s for %q", collection, id)
			return
		}
		out := make([]any, len(docs))
		for i, d := range docs {
			out[i] = map[string]any(d)
		}
		writeJSON(w, http.StatusOK, apiResponse{Valid: true, Response: out})
	}
}

func (s *Server) handleBatteries(w http.ResponseWriter, r *http.Request) {
	email, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	if s.replyNotModified(w, r, "batteries") {
		return
	}
	filter := document.D{}
	if ion := r.URL.Query().Get("ion"); ion != "" {
		filter["working_ion"] = ion
	}
	docs, err := s.Engine.Find(email, "batteries", filter, stalenessOpts(r))
	if err != nil {
		s.writeEngineErr(w, err)
		return
	}
	out := make([]any, len(docs))
	for i, d := range docs {
		out[i] = map[string]any(d)
	}
	writeJSON(w, http.StatusOK, apiResponse{Valid: true, Response: out})
}

// etagFor renders a collection's cache validator: its name plus its
// current write generation. Any acknowledged write to the collection
// changes the generation (on a cluster, the per-shard sum), so a
// matching tag proves the client's cached body is still current.
func (s *Server) etagFor(collection string) string {
	return fmt.Sprintf("\"%s-g%d\"", collection, s.Engine.Generation(collection))
}

// replyNotModified stamps the generation-derived ETag on a GET response
// and short-circuits with 304 Not Modified when the request's
// If-None-Match still matches. Callers return immediately when it
// reports true. Weak validators (W/ prefix) compare equal: the body is
// deterministic for a generation, but that guarantee is all a weak
// match needs.
func (s *Server) replyNotModified(w http.ResponseWriter, r *http.Request, collection string) bool {
	tag := s.etagFor(collection)
	w.Header().Set("ETag", tag)
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	for _, cand := range strings.Split(inm, ",") {
		cand = strings.TrimPrefix(strings.TrimSpace(cand), "W/")
		if cand == tag || cand == "*" {
			s.obsReg.Load().Counter("http.not_modified").Inc()
			w.WriteHeader(http.StatusNotModified)
			return true
		}
	}
	return false
}

func (s *Server) writeEngineErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, queryengine.ErrRateLimited):
		writeErr(w, http.StatusTooManyRequests, "rate limit exceeded")
	case errors.Is(err, datastore.ErrNotFound):
		writeErr(w, http.StatusNotFound, "not found")
	case errors.Is(err, queryengine.ErrUnavailable):
		// Storage-tier outage (e.g. a shard with no healthy members): a
		// retryable 503, not a caller error.
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}
