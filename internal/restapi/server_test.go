package restapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/document"
	"matproj/internal/queryengine"
)

func doc(s string) document.D { return document.MustFromJSON(s) }

// newTestStore seeds the small materials corpus shared by the API tests.
func newTestStore(t *testing.T) *datastore.Store {
	t.Helper()
	store := datastore.MustOpenMemory()
	mats := store.C("materials")
	rows := []string{
		`{"_id": "mat-1", "pretty_formula": "Fe2O3", "final_energy": -8.1, "e_per_atom": -1.62, "band_gap": 2.1, "density": 5.2, "elements": ["Fe", "O"], "nelectrons": 76}`,
		`{"_id": "mat-2", "pretty_formula": "LiFePO4", "final_energy": -12.2, "e_per_atom": -1.74, "band_gap": 3.4, "density": 3.6, "elements": ["Li", "Fe", "P", "O"], "nelectrons": 78}`,
		`{"_id": "mat-3", "pretty_formula": "NaCl", "final_energy": -3.4, "e_per_atom": -1.7, "band_gap": 5.0, "density": 2.2, "elements": ["Cl", "Na"], "nelectrons": 28}`,
	}
	for _, r := range rows {
		if _, err := mats.Insert(doc(r)); err != nil {
			t.Fatal(err)
		}
	}
	store.C("bandstructures").Insert(doc(`{"material_id": "mat-1", "band_gap": 2.1, "bands": [[1, 2]]}`))
	store.C("xrd").Insert(doc(`{"material_id": "mat-1", "npeaks": 7}`))
	store.C("batteries").Insert(doc(`{"battery_id": "bat-1", "working_ion": "Li", "voltage": 3.4}`))
	store.C("batteries").Insert(doc(`{"battery_id": "bat-2", "working_ion": "Na", "voltage": 2.9}`))
	return store
}

func newTestEngine(store *datastore.Store, opts ...queryengine.Option) *queryengine.Engine {
	return queryengine.New(store, opts...)
}

// testServer builds a server over a small materials corpus and returns
// it with a valid API key. With RESTAPI_BACKEND=routed in the
// environment (see TestMaterialsAPISuiteRouted) the corpus is served
// through a networked 2-shard cluster — wire transport, query router,
// replica per shard — instead of a local store; auth and status stay on
// the local store either way, matching the mpserve router role.
func testServer(t *testing.T, opts ...queryengine.Option) (*httptest.Server, string) {
	t.Helper()
	store := newTestStore(t)
	var eng *queryengine.Engine
	if os.Getenv("RESTAPI_BACKEND") == "routed" {
		eng = newRoutedEngine(t, store, opts...)
	} else {
		eng = newTestEngine(store, opts...)
	}
	auth := NewAuth(store)
	srv := httptest.NewServer(NewServer(eng, auth, store))
	t.Cleanup(srv.Close)

	key, err := auth.Signup("google", "alice@example.com")
	if err != nil {
		t.Fatal(err)
	}
	return srv, key
}

// get performs an authenticated GET and decodes the envelope.
func get(t *testing.T, srv *httptest.Server, key, path string) (int, apiResponse) {
	t.Helper()
	req, _ := http.NewRequest("GET", srv.URL+path, nil)
	if key != "" {
		req.Header.Set("X-API-KEY", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env apiResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, env
}

func TestFig4URI(t *testing.T) {
	srv, key := testServer(t)
	// The exact URI anatomy from Fig. 4:
	// {preamble}/rest/{version}/materials/{application id}/{datatype}/{property}
	status, env := get(t, srv, key, "/rest/v1/materials/Fe2O3/vasp/energy")
	if status != http.StatusOK || !env.Valid {
		t.Fatalf("status=%d env=%+v", status, env)
	}
	if env.NResults != 1 {
		t.Fatalf("results = %d", env.NResults)
	}
	row := env.Response[0].(map[string]any)
	if row["energy"] != -8.1 {
		t.Errorf("energy = %v", row["energy"])
	}
	if row["material_id"] != "mat-1" {
		t.Errorf("material_id = %v", row["material_id"])
	}
}

func TestMaterialsByIDChemsysAndAll(t *testing.T) {
	srv, key := testServer(t)
	// By material id, all properties.
	status, env := get(t, srv, key, "/rest/v1/materials/mat-2/vasp/all")
	if status != 200 || env.NResults != 1 {
		t.Fatalf("by id: %d %+v", status, env)
	}
	row := env.Response[0].(map[string]any)
	if row["formula"] != "LiFePO4" || row["band_gap"] != 3.4 {
		t.Errorf("row = %v", row)
	}
	// Bare /vasp behaves like /vasp/all.
	status, env = get(t, srv, key, "/rest/v1/materials/mat-2/vasp")
	if status != 200 || env.NResults != 1 {
		t.Fatalf("bare vasp: %d", status)
	}
	// Chemical system search: subset semantics, so Li-Fe-P-O matches both
	// LiFePO4 and the Fe2O3 subsystem material.
	status, env = get(t, srv, key, "/rest/v1/materials/Li-Fe-P-O/vasp/band_gap")
	if status != 200 || env.NResults != 2 {
		t.Fatalf("chemsys: %d %+v", status, env)
	}
	// A narrower system excludes materials with outside elements.
	status, env = get(t, srv, key, "/rest/v1/materials/Fe-O/vasp/band_gap")
	if status != 200 || env.NResults != 1 {
		t.Fatalf("chemsys Fe-O: %d %+v", status, env)
	}
	// Formula normalization: user writes O3Fe2, we canonicalize to Fe2O3.
	status, env = get(t, srv, key, "/rest/v1/materials/O3Fe2/vasp/energy")
	if status != 200 || env.NResults != 1 {
		t.Errorf("normalized formula: %d %+v", status, env)
	}
}

func TestMaterialsErrors(t *testing.T) {
	srv, key := testServer(t)
	cases := []struct {
		path   string
		status int
	}{
		{"/rest/v1/materials/Fe2O3/vasp/energy", 200},
		{"/rest/v1/materials/UnknownF7/vasp/energy", 400}, // bad identifier
		{"/rest/v1/materials/KCl/vasp/energy", 404},       // valid formula, no data
		{"/rest/v1/materials/Fe2O3/vasp/bogus", 400},      // unknown property
		{"/rest/v1/materials/Fe2O3/notvasp/energy", 400},  // wrong datatype
		{"/rest/v1/materials/Li-Xx/vasp/energy", 400},     // bad chemsys
	}
	for _, c := range cases {
		status, _ := get(t, srv, key, c.path)
		if status != c.status {
			t.Errorf("%s: status = %d, want %d", c.path, status, c.status)
		}
	}
}

func TestAuthRequired(t *testing.T) {
	srv, _ := testServer(t)
	status, env := get(t, srv, "", "/rest/v1/materials/Fe2O3/vasp/energy")
	if status != http.StatusUnauthorized || env.Valid {
		t.Errorf("status=%d env=%+v", status, env)
	}
	status, _ = get(t, srv, "wrong-key", "/rest/v1/materials/Fe2O3/vasp/energy")
	if status != http.StatusUnauthorized {
		t.Errorf("bad key status = %d", status)
	}
	// Key in query parameter also works.
	srv2, key := testServer(t)
	resp, err := http.Get(srv2.URL + "/rest/v1/materials/Fe2O3/vasp/energy?API_KEY=" + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("query-param key status = %d", resp.StatusCode)
	}
}

func TestSignupDelegation(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Post(srv.URL+"/auth/signup?provider=google&email=bob@example.com", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var env apiResponse
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if !env.Valid || env.NResults != 1 {
		t.Fatalf("env = %+v", env)
	}
	key := env.Response[0].(map[string]any)["api_key"].(string)
	if !strings.HasPrefix(key, "mp-") {
		t.Errorf("key = %q", key)
	}
	// Idempotent: same email returns the same key.
	resp2, _ := http.Post(srv.URL+"/auth/signup?provider=yahoo&email=bob@example.com", "", nil)
	var env2 apiResponse
	json.NewDecoder(resp2.Body).Decode(&env2)
	resp2.Body.Close()
	if env2.Response[0].(map[string]any)["api_key"] != key {
		t.Error("signup not idempotent")
	}
	// Untrusted provider rejected.
	resp3, _ := http.Post(srv.URL+"/auth/signup?provider=evilcorp&email=x@y.z", "", nil)
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("untrusted provider status = %d", resp3.StatusCode)
	}
	resp3.Body.Close()
	// Missing email rejected.
	resp4, _ := http.Post(srv.URL+"/auth/signup?provider=google", "", nil)
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("missing email status = %d", resp4.StatusCode)
	}
	resp4.Body.Close()
}

func TestQueryEndpointSanitized(t *testing.T) {
	srv, key := testServer(t)
	post := func(body string) (int, apiResponse) {
		req, _ := http.NewRequest("POST", srv.URL+"/rest/v1/query", strings.NewReader(body))
		req.Header.Set("X-API-KEY", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env apiResponse
		json.NewDecoder(resp.Body).Decode(&env)
		return resp.StatusCode, env
	}
	status, env := post(`{"criteria": {"elements": {"$all": ["Li", "O"]}}, "properties": ["formula", "energy"]}`)
	if status != 200 || env.NResults != 1 {
		t.Fatalf("query: %d %+v", status, env)
	}
	row := env.Response[0].(map[string]any)
	if row["pretty_formula"] != "LiFePO4" {
		t.Errorf("row = %v", row)
	}
	if _, leaked := row["density"]; leaked {
		t.Error("projection ignored")
	}
	// $where is always denied by the engine (code injection guard).
	status, _ = post(`{"criteria": {"$where": "this.x"}}`)
	if status != http.StatusBadRequest {
		t.Errorf("$where status = %d", status)
	}
	// Limit respected.
	status, env = post(`{"criteria": {}, "limit": 2}`)
	if status != 200 || env.NResults != 2 {
		t.Errorf("limit: %d %+v", status, env)
	}
	// Malformed body.
	status, _ = post(`{nope`)
	if status != http.StatusBadRequest {
		t.Errorf("malformed status = %d", status)
	}
}

func TestDerivedCollections(t *testing.T) {
	srv, key := testServer(t)
	status, env := get(t, srv, key, "/rest/v1/bandstructure/mat-1")
	if status != 200 || env.NResults != 1 {
		t.Fatalf("bandstructure: %d %+v", status, env)
	}
	status, env = get(t, srv, key, "/rest/v1/xrd/mat-1")
	if status != 200 || env.NResults != 1 {
		t.Fatalf("xrd: %d", status)
	}
	status, _ = get(t, srv, key, "/rest/v1/xrd/mat-404")
	if status != http.StatusNotFound {
		t.Errorf("missing xrd status = %d", status)
	}
	status, _ = get(t, srv, key, "/rest/v1/bandstructure/")
	if status != http.StatusBadRequest {
		t.Errorf("empty id status = %d", status)
	}
}

func TestBatteriesEndpoint(t *testing.T) {
	srv, key := testServer(t)
	status, env := get(t, srv, key, "/rest/v1/batteries")
	if status != 200 || env.NResults != 2 {
		t.Fatalf("batteries: %d %+v", status, env)
	}
	status, env = get(t, srv, key, "/rest/v1/batteries?ion=Li")
	if status != 200 || env.NResults != 1 {
		t.Errorf("li filter: %d %+v", status, env)
	}
}

func TestRateLimitReturns429(t *testing.T) {
	srv, key := testServer(t, queryengine.WithRateLimit(3, time.Minute))
	var last int
	for i := 0; i < 5; i++ {
		last, _ = get(t, srv, key, "/rest/v1/materials/Fe2O3/vasp/energy")
	}
	if last != http.StatusTooManyRequests {
		t.Errorf("status after burst = %d, want 429", last)
	}
}

func TestResponseEnvelopeShape(t *testing.T) {
	srv, key := testServer(t)
	req, _ := http.NewRequest("GET", srv.URL+"/rest/v1/materials/Fe2O3/vasp/energy", nil)
	req.Header.Set("X-API-KEY", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %s", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"valid_response", "response", "num_results"} {
		if _, ok := raw[field]; !ok {
			t.Errorf("envelope missing %s: %s", field, body)
		}
	}
}

func TestAuthLookup(t *testing.T) {
	store := datastore.MustOpenMemory()
	a := NewAuth(store)
	if _, ok := a.Lookup(""); ok {
		t.Error("empty key resolved")
	}
	key, err := a.Signup("google", "x@y.z")
	if err != nil {
		t.Fatal(err)
	}
	email, ok := a.Lookup(key)
	if !ok || email != "x@y.z" {
		t.Errorf("lookup = %q %v", email, ok)
	}
	// Keys are unique across users.
	key2, _ := a.Signup("yahoo", "other@y.z")
	if key2 == key {
		t.Error("key collision")
	}
	_ = fmt.Sprint()
}

func TestAggregateEndpoint(t *testing.T) {
	srv, key := testServer(t)
	post := func(body string) (int, apiResponse) {
		req, _ := http.NewRequest("POST", srv.URL+"/rest/v1/aggregate", strings.NewReader(body))
		req.Header.Set("X-API-KEY", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env apiResponse
		json.NewDecoder(resp.Body).Decode(&env)
		return resp.StatusCode, env
	}
	status, env := post(`{"pipeline": [
		{"$unwind": "$elements"},
		{"$group": {"_id": "$elements", "n": {"$sum": 1}}},
		{"$sort": {"n": -1}},
		{"$limit": 2}
	]}`)
	if status != 200 || env.NResults != 2 {
		t.Fatalf("aggregate: %d %+v", status, env)
	}
	top := env.Response[0].(map[string]any)
	// Fe and O both occur twice in the 3-material corpus.
	if top["n"] != float64(2) {
		t.Errorf("top group = %v", top)
	}
	// Disallowed stage rejected.
	status, _ = post(`{"pipeline": [{"$merge": {"into": "x"}}]}`)
	if status != http.StatusBadRequest {
		t.Errorf("disallowed stage status = %d", status)
	}
	// Empty/garbage bodies rejected.
	status, _ = post(`{"pipeline": []}`)
	if status != http.StatusBadRequest {
		t.Errorf("empty pipeline status = %d", status)
	}
	status, _ = post(`{nope`)
	if status != http.StatusBadRequest {
		t.Errorf("garbage status = %d", status)
	}
}
