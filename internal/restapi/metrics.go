package restapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"matproj/internal/obs"
)

// Observe wires the server into a metrics registry and slow-op tracer
// (either may be nil). The HTTP middleware then records per-endpoint
// status counters and latency histograms, and GET /metrics and
// GET /status expose the registry live. Safe to call before serving
// starts or while requests are in flight.
func (s *Server) Observe(reg *obs.Registry, tr *obs.Tracer) {
	s.obsReg.Store(reg)
	s.obsTr.Store(tr)
}

// EnablePprof mounts net/http/pprof under /debug/pprof/ — opt-in, so a
// public deployment does not expose profiling by default. Call before
// serving traffic.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps an endpoint handler with per-endpoint metrics: a
// latency histogram (http.<name>_ms), request and status-class counters,
// and a slow-op log entry when the request crosses the tracer threshold.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Bound the request body before the handler reads it: decoding an
		// oversized body fails with *http.MaxBytesError, which the
		// handlers map to 413 via writeDecodeErr.
		if limit := s.maxBodyBytes(); limit > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		reg := s.obsReg.Load()
		tr := s.obsTr.Load()
		if reg == nil && tr == nil {
			h(w, r)
			return
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h(rec, r)
		dur := time.Since(start)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		if reg != nil {
			reg.Counter("http.requests").Inc()
			reg.Counter("http." + name + ".count").Inc()
			reg.Counter(fmt.Sprintf("http.%s.status.%d", name, rec.status)).Inc()
			reg.LatencyHistogram("http." + name + "_ms").ObserveDuration(dur)
		}
		path := r.URL.Path
		tr.ObserveFunc("http."+name, dur, func() string {
			return fmt.Sprintf("%s %s status=%d", r.Method, path, rec.status)
		})
	}
}

// metricsPayload is the GET /metrics JSON document.
type metricsPayload struct {
	obs.Snapshot
	SlowThresholdMs float64      `json:"slow_threshold_ms,omitempty"`
	SlowOps         []obs.SlowOp `json:"slow_ops,omitempty"`
	SlowOpsTotal    uint64       `json:"slow_ops_total"`
	OpsTraced       uint64       `json:"ops_traced"`
}

// handleMetrics serves the live registry. JSON by default;
// ?format=text renders counters, gauges, and the Fig. 5-style text
// histograms (per-endpoint latency included) plus the slow-query log.
// Unauthenticated by design: it is an operator endpoint, exposed on the
// same mux for deployment simplicity.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.obsReg.Load()
	tr := s.obsTr.Load()
	payload := metricsPayload{Snapshot: reg.Snapshot()}
	if tr != nil {
		payload.SlowThresholdMs = float64(tr.Threshold()) / float64(time.Millisecond)
		payload.SlowOps = tr.SlowOps()
		payload.OpsTraced, payload.SlowOpsTotal = tr.Counts()
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		payload.Snapshot.WriteText(w)
		if len(payload.SlowOps) > 0 {
			fmt.Fprintf(w, "slow ops (threshold %.1f ms, %d logged of %d):\n",
				payload.SlowThresholdMs, len(payload.SlowOps), payload.SlowOpsTotal)
			for _, op := range payload.SlowOps {
				fmt.Fprintf(w, "  %s %10.3f ms  %s  %s\n",
					op.At.Format("15:04:05.000"), op.DurationMs, op.Op, op.Detail)
			}
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(payload)
}

// statusPayload is the GET /status JSON document: uptime plus the store
// and profiler headline numbers (the paper's weekly-accounting style:
// operations served and records returned).
type statusPayload struct {
	UptimeSeconds float64            `json:"uptime_s"`
	Collections   []string           `json:"collections"`
	Documents     int                `json:"documents"`
	Bytes         int                `json:"bytes"`
	StoreOps      uint64             `json:"store_ops"`
	RecordsServed uint64             `json:"records_served"`
	Requests      uint64             `json:"http_requests"`
	AuthFailures  uint64             `json:"auth_failures"`
	EndpointP50Ms map[string]float64 `json:"endpoint_p50_ms,omitempty"`
}

// handleStatus serves a one-page summary of the deployment.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.Store.Stats()
	ops, records := s.Store.Profiler().Totals()
	payload := statusPayload{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Collections:   s.Store.Collections(),
		Documents:     st.Documents,
		Bytes:         st.Bytes,
		StoreOps:      ops,
		RecordsServed: records,
	}
	if reg := s.obsReg.Load(); reg != nil {
		snap := reg.Snapshot()
		payload.Requests = snap.Counters["http.requests"]
		payload.AuthFailures = snap.Counters["http.auth_failures"]
		payload.EndpointP50Ms = map[string]float64{}
		names := make([]string, 0, len(snap.Histograms))
		for n := range snap.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if h := snap.Histograms[n]; strings.HasPrefix(n, "http.") && h.Count > 0 {
				payload.EndpointP50Ms[strings.TrimSuffix(strings.TrimPrefix(n, "http."), "_ms")] = h.Quantile(50)
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(payload)
}
