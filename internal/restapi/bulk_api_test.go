package restapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"matproj/internal/obs"
)

// postJSON performs an authenticated POST with a JSON body and decodes
// the envelope.
func postJSON(t *testing.T, srv *httptest.Server, key, path, body string) (int, apiResponse) {
	t.Helper()
	req, _ := http.NewRequest("POST", srv.URL+path, strings.NewReader(body))
	req.Header.Set("X-API-KEY", key)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env apiResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, env
}

func TestInsertManyEndpoint(t *testing.T) {
	srv, key := testServer(t)
	body := `{"docs": [
		{"_id": "bm-1", "pretty_formula": "TiO2", "final_energy": -9.0},
		{"_id": "bm-2", "pretty_formula": "MgO", "final_energy": -5.5},
		{"pretty_formula": "ZnS", "final_energy": -4.1}
	]}`
	status, env := postJSON(t, srv, key, "/rest/v1/insertMany", body)
	if status != http.StatusOK || !env.Valid {
		t.Fatalf("status=%d env=%+v", status, env)
	}
	if env.NResults != 3 {
		t.Fatalf("rows = %d, want 3", env.NResults)
	}
	for i, row := range env.Response {
		id, _ := row.(map[string]any)["_id"].(string)
		if id == "" {
			t.Errorf("row %d has no _id: %v", i, row)
		}
	}
	// The batch is queryable through the normal read path.
	status, env = postJSON(t, srv, key, "/rest/v1/query", `{"criteria": {"pretty_formula": "MgO"}}`)
	if status != http.StatusOK || env.NResults != 1 {
		t.Fatalf("query after insertMany: status=%d env=%+v", status, env)
	}

	// Empty batch is a caller error.
	if status, _ := postJSON(t, srv, key, "/rest/v1/insertMany", `{"docs": []}`); status != http.StatusBadRequest {
		t.Errorf("empty docs: status=%d, want 400", status)
	}
	// Unauthenticated requests are rejected before any write.
	if status, _ := postJSON(t, srv, "bad-key", "/rest/v1/insertMany", body); status != http.StatusUnauthorized {
		t.Errorf("bad key: status=%d, want 401", status)
	}
}

func TestBulkWriteEndpoint(t *testing.T) {
	srv, key := testServer(t)
	body := `{"ops": [
		{"op": "insert", "doc": {"_id": "bw-1", "pretty_formula": "CaO", "final_energy": -6.0}},
		{"op": "insert", "doc": {"_id": "bw-1", "pretty_formula": "CaO"}},
		{"op": "updateMany", "filter": {"_id": "bw-1"}, "update": {"$set": {"band_gap": 7.0}}},
		{"op": "delete", "filter": {"_id": "mat-3"}}
	]}`
	status, env := postJSON(t, srv, key, "/rest/v1/bulkWrite", body)
	if status != http.StatusOK || !env.Valid {
		t.Fatalf("status=%d env=%+v", status, env)
	}
	if env.NResults != 4 {
		t.Fatalf("rows = %d, want 4", env.NResults)
	}
	rows := make([]map[string]any, 4)
	for i, r := range env.Response {
		rows[i] = r.(map[string]any)
	}
	if rows[0]["id"] != "bw-1" || rows[0]["error"] != nil {
		t.Errorf("insert row = %v", rows[0])
	}
	if errMsg, _ := rows[1]["error"].(string); errMsg == "" {
		t.Errorf("duplicate insert row carries no error: %v", rows[1])
	}
	if rows[2]["matched"] != 1.0 || rows[2]["modified"] != 1.0 {
		t.Errorf("updateMany row = %v", rows[2])
	}
	if rows[3]["removed"] != 1.0 {
		t.Errorf("delete row = %v", rows[3])
	}
	// The update landed and the delete is visible on the read path.
	status, env = postJSON(t, srv, key, "/rest/v1/query", `{"criteria": {"_id": "bw-1"}}`)
	if status != 200 || env.NResults != 1 {
		t.Fatalf("query bw-1: %d %+v", status, env)
	}
	if env.Response[0].(map[string]any)["band_gap"] != 7.0 {
		t.Errorf("bulk update not applied: %v", env.Response[0])
	}
	if _, env := postJSON(t, srv, key, "/rest/v1/query", `{"criteria": {"_id": "mat-3"}}`); env.NResults != 0 {
		t.Error("bulk delete not applied")
	}

	if status, _ := postJSON(t, srv, key, "/rest/v1/bulkWrite", `{"ops": []}`); status != http.StatusBadRequest {
		t.Errorf("empty ops: status=%d, want 400", status)
	}
}

// TestBodyCapReturns413 is the regression test for unbounded request
// bodies: a body over MaxBodyBytes must be refused with 413 in the
// standard envelope — not streamed into memory — and counted in
// http.body_rejected.
func TestBodyCapReturns413(t *testing.T) {
	store := newTestStore(t)
	eng := newTestEngine(store)
	auth := NewAuth(store)
	api := NewServer(eng, auth, store)
	api.MaxBodyBytes = 512
	reg := obs.NewRegistry()
	api.Observe(reg, nil)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	key, err := auth.Signup("google", "cap@example.com")
	if err != nil {
		t.Fatal(err)
	}

	big := `{"criteria": {"pretty_formula": "` + strings.Repeat("X", 2048) + `"}}`
	status, env := postJSON(t, srv, key, "/rest/v1/query", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", status)
	}
	if env.Valid || !strings.Contains(env.Error, "512") {
		t.Errorf("envelope = %+v", env)
	}
	if got := reg.Snapshot().Counters["http.body_rejected"]; got != 1 {
		t.Errorf("http.body_rejected = %d, want 1", got)
	}

	// Under the cap, the same endpoint still works.
	status, _ = postJSON(t, srv, key, "/rest/v1/query", `{"criteria": {"_id": "mat-1"}}`)
	if status != http.StatusOK {
		t.Errorf("small body: status = %d", status)
	}

	// A negative cap disables the limit entirely.
	api2 := NewServer(eng, auth, store)
	api2.MaxBodyBytes = -1
	srv2 := httptest.NewServer(api2)
	t.Cleanup(srv2.Close)
	if status, _ := postJSON(t, srv2, key, "/rest/v1/query", big); status != http.StatusOK {
		t.Errorf("uncapped big body: status = %d", status)
	}
}
