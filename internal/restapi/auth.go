// Package restapi implements the Materials API of §III-D2: an HTTP API
// mapping URIs of the form
//
//	/rest/v1/materials/{identifier}/vasp/{property}
//
// to data objects, returning JSON. Authentication is delegated to
// simulated third-party identity providers (the paper uses Google/Yahoo
// OpenID): the server never stores passwords, only provider-vouched
// emails and the API keys it issues. All reads flow through the
// QueryEngine, so queries are sanitized and rate-limited (§IV-D1).
package restapi

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"

	"matproj/internal/datastore"
	"matproj/internal/document"
)

// TrustedProviders are the third-party identity providers accepted for
// delegated signup.
var TrustedProviders = map[string]bool{"google": true, "yahoo": true}

// Auth manages API keys backed by the users collection.
type Auth struct {
	users *datastore.Collection
}

// NewAuth wires key management to a store.
func NewAuth(store *datastore.Store) *Auth {
	users := store.C("users")
	users.EnsureIndex("api_key")
	return &Auth{users: users}
}

// Signup registers an identity vouched by a trusted provider and returns
// a fresh API key. Signing up again with the same email rotates nothing:
// the existing key is returned (idempotent).
func (a *Auth) Signup(provider, email string) (string, error) {
	if !TrustedProviders[provider] {
		return "", fmt.Errorf("restapi: untrusted provider %q", provider)
	}
	if email == "" {
		return "", fmt.Errorf("restapi: email required")
	}
	existing, err := a.users.FindOne(document.D{"email": email}, nil)
	if err == nil {
		return existing.GetString("api_key"), nil
	}
	key, err := newAPIKey()
	if err != nil {
		return "", err
	}
	_, err = a.users.Insert(document.D{
		"email":    email,
		"provider": provider,
		"api_key":  key,
	})
	if err != nil {
		return "", fmt.Errorf("restapi: store user record: %w", err)
	}
	return key, nil
}

// Lookup resolves an API key to the owning user's email; ok is false for
// unknown keys.
func (a *Auth) Lookup(key string) (email string, ok bool) {
	if key == "" {
		return "", false
	}
	u, err := a.users.FindOne(document.D{"api_key": key}, nil)
	if err != nil {
		return "", false
	}
	return u.GetString("email"), true
}

func newAPIKey() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("restapi: key generation: %w", err)
	}
	return "mp-" + hex.EncodeToString(b[:]), nil
}
