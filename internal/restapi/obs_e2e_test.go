package restapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"matproj/internal/obs"
)

// instrumentedServer is the e2e fixture: the standard test corpus plus a
// live registry and an everything-is-slow tracer wired in before serving.
func instrumentedServer(t *testing.T) (*httptest.Server, string, *obs.Registry, *obs.Tracer) {
	t.Helper()
	store := newTestStore(t)
	eng := newTestEngine(store)
	auth := NewAuth(store)
	api := NewServer(eng, auth, store)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(time.Nanosecond, 32)
	api.Observe(reg, tr)
	api.EnablePprof()
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	key, err := auth.Signup("google", "alice@example.com")
	if err != nil {
		t.Fatal(err)
	}
	return srv, key, reg, tr
}

// TestObservabilityEndToEnd drives an instrumented API over HTTP: a
// materials query round-trip, an auth failure, then /metrics (JSON and
// text render) and /status must reflect exactly that traffic.
func TestObservabilityEndToEnd(t *testing.T) {
	srv, key, _, _ := instrumentedServer(t)

	status, env := get(t, srv, key, "/rest/v1/materials/Fe2O3/vasp/energy")
	if status != http.StatusOK || !env.Valid {
		t.Fatalf("materials round-trip: status=%d env=%+v", status, env)
	}
	if status, _ := get(t, srv, "bad-key", "/rest/v1/materials/Fe2O3/vasp/energy"); status != http.StatusUnauthorized {
		t.Fatalf("bad key: status=%d, want 401", status)
	}

	// JSON /metrics: the traffic above, counted per endpoint and status.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Counters   map[string]uint64 `json:"counters"`
		Histograms map[string]struct {
			Count uint64 `json:"count"`
		} `json:"histograms"`
		SlowOpsTotal uint64            `json:"slow_ops_total"`
		SlowOps      []json.RawMessage `json:"slow_ops"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if got := payload.Counters["http.materials.count"]; got != 2 {
		t.Fatalf("http.materials.count = %d, want 2", got)
	}
	if got := payload.Counters["http.materials.status.401"]; got != 1 {
		t.Fatalf("http.materials.status.401 = %d, want 1", got)
	}
	if got := payload.Counters["http.auth_failures"]; got != 1 {
		t.Fatalf("http.auth_failures = %d, want 1", got)
	}
	if got := payload.Histograms["http.materials_ms"].Count; got != 2 {
		t.Fatalf("http.materials_ms count = %d, want 2", got)
	}
	if payload.SlowOpsTotal == 0 || len(payload.SlowOps) == 0 {
		t.Fatalf("slow-query log empty despite 1ns threshold: total=%d logged=%d",
			payload.SlowOpsTotal, len(payload.SlowOps))
	}

	// Text render: per-endpoint latency histogram in the Fig. 5 shape.
	resp, err = http.Get(srv.URL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{"histogram http.materials_ms", "counter http.materials.status.401", "slow ops", " ms |"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text metrics missing %q:\n%s", want, text)
		}
	}

	// /status: deployment headline numbers.
	resp, err = http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		UptimeSeconds float64            `json:"uptime_s"`
		Collections   []string           `json:"collections"`
		Requests      uint64             `json:"http_requests"`
		AuthFailures  uint64             `json:"auth_failures"`
		EndpointP50Ms map[string]float64 `json:"endpoint_p50_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.AuthFailures != 1 {
		t.Fatalf("status auth_failures = %d, want 1", st.AuthFailures)
	}
	if st.Requests < 2 {
		t.Fatalf("status http_requests = %d, want >= 2", st.Requests)
	}
	if _, ok := st.EndpointP50Ms["materials"]; !ok {
		t.Fatalf("status lacks materials p50: %+v", st.EndpointP50Ms)
	}
	if len(st.Collections) == 0 || st.UptimeSeconds <= 0 {
		t.Fatalf("implausible status: %+v", st)
	}

	// pprof is mounted (opt-in was exercised by the fixture).
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status=%d", resp.StatusCode)
	}
}

// TestUninstrumentedServerServesMetricsGracefully: without Observe, the
// endpoints still answer (empty snapshot) and the middleware adds no
// bookkeeping.
func TestUninstrumentedServerServesMetricsGracefully(t *testing.T) {
	srv, key := testServer(t)
	if status, env := get(t, srv, key, "/rest/v1/materials/Fe2O3/vasp/energy"); status != http.StatusOK || !env.Valid {
		t.Fatalf("round-trip: status=%d", status)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Counters) != 0 {
		t.Fatalf("uninstrumented server recorded counters: %v", payload.Counters)
	}
}
