package restapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"matproj/internal/document"
	"matproj/internal/obs"
	"matproj/internal/queryengine"
)

// etagFixture is a server with the registry wired into both the API and
// the store, plus direct engine access so tests can issue writes.
func etagFixture(t *testing.T) (*httptest.Server, string, *queryengine.Engine, *obs.Registry) {
	t.Helper()
	store := newTestStore(t)
	eng := newTestEngine(store)
	auth := NewAuth(store)
	api := NewServer(eng, auth, store)
	reg := obs.NewRegistry()
	api.Observe(reg, nil)
	store.Observe(reg, nil)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	key, err := auth.Signup("google", "alice@example.com")
	if err != nil {
		t.Fatal(err)
	}
	return srv, key, eng, reg
}

func condGet(t *testing.T, srv *httptest.Server, key, path, ifNoneMatch string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest("GET", srv.URL+path, nil)
	req.Header.Set("X-API-KEY", key)
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestETagConditionalGet exercises the generation-derived cache
// validator end to end: a GET carries an ETag, a conditional re-GET
// with that tag returns 304 with no body, and any write to the
// collection changes the tag so the next conditional GET recomputes.
func TestETagConditionalGet(t *testing.T) {
	srv, key, eng, reg := etagFixture(t)

	resp := condGet(t, srv, key, "/rest/v1/materials/Fe2O3/vasp", "")
	tag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || tag == "" {
		t.Fatalf("status=%d etag=%q, want 200 with an ETag", resp.StatusCode, tag)
	}
	io.Copy(io.Discard, resp.Body)

	resp = condGet(t, srv, key, "/rest/v1/materials/Fe2O3/vasp", tag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET status=%d, want 304", resp.StatusCode)
	}
	if body, _ := io.ReadAll(resp.Body); len(body) != 0 {
		t.Fatalf("304 carried a body: %q", body)
	}
	if got := reg.Snapshot().Counters["http.not_modified"]; got != 1 {
		t.Fatalf("http.not_modified = %d, want 1", got)
	}

	// Weak validators compare equal.
	if resp := condGet(t, srv, key, "/rest/v1/materials/Fe2O3/vasp", "W/"+tag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("weak conditional GET status=%d, want 304", resp.StatusCode)
	}

	// A write to the collection moves the generation: the old tag no
	// longer validates and the response carries a new one.
	if _, err := eng.Insert("alice@example.com", "materials", document.D{"pretty_formula": "MgO", "band_gap": 7.8}); err != nil {
		t.Fatal(err)
	}
	resp = condGet(t, srv, key, "/rest/v1/materials/Fe2O3/vasp", tag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-write conditional GET status=%d, want 200", resp.StatusCode)
	}
	if newTag := resp.Header.Get("ETag"); newTag == tag || newTag == "" {
		t.Fatalf("post-write ETag = %q, want a fresh tag != %q", newTag, tag)
	}
	io.Copy(io.Discard, resp.Body)

	// Other GET surfaces carry tags for their own collections.
	resp = condGet(t, srv, key, "/rest/v1/batteries", "")
	if got := resp.Header.Get("ETag"); resp.StatusCode != http.StatusOK || got == "" || got == tag {
		t.Fatalf("batteries: status=%d etag=%q", resp.StatusCode, got)
	}
	io.Copy(io.Discard, resp.Body)
	resp = condGet(t, srv, key, "/rest/v1/bandstructure/mat-1", "")
	if got := resp.Header.Get("ETag"); resp.StatusCode != http.StatusOK || got == "" {
		t.Fatalf("bandstructure: status=%d etag=%q", resp.StatusCode, got)
	}
	io.Copy(io.Discard, resp.Body)
}

// TestMetricsReflectCountAndDistinct is the regression test for the
// unprofiled read ops: after an engine Count and Distinct, the live
// /metrics endpoint must report the per-collection datastore counters —
// before the fix both ops bypassed the profiler entirely.
func TestMetricsReflectCountAndDistinct(t *testing.T) {
	srv, _, eng, _ := etagFixture(t)

	if _, err := eng.Count("alice@example.com", "materials", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Distinct("alice@example.com", "materials", "pretty_formula", nil); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if got := payload.Counters["datastore.materials.count"]; got != 1 {
		t.Fatalf("datastore.materials.count = %d, want 1", got)
	}
	if got := payload.Counters["datastore.materials.distinct"]; got != 1 {
		t.Fatalf("datastore.materials.distinct = %d, want 1", got)
	}
}
