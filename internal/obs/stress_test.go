package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentStress hammers one registry with N writer
// goroutines (counters, gauges, histograms, tracer spans — including
// racing get-or-create on fresh names) while M readers snapshot and
// render continuously. It must pass under -race, and the final counts
// must balance exactly.
func TestRegistryConcurrentStress(t *testing.T) {
	const (
		writers = 8
		readers = 4
		perG    = 2000
	)
	r := NewRegistry()
	tr := NewTracer(time.Nanosecond, 64) // everything is "slow": max ring churn
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perG; i++ {
				r.Counter("stress.total").Inc()
				r.Counter(fmt.Sprintf("stress.w%d", w)).Inc()
				r.Gauge("stress.depth").Add(1)
				r.Gauge("stress.depth").Add(-1)
				r.LatencyHistogram("stress.lat").Observe(float64(i%100) / 10)
				r.Histogram(fmt.Sprintf("stress.h%d", i%5), 0.1, 100, 8).Observe(1)
				sp := tr.Start("stress.op")
				sp.SetDetail("writer")
				sp.Finish()
			}
		}(w)
	}
	for m := 0; m < readers; m++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot()
				if h, ok := s.Histograms["stress.lat"]; ok && h.Count > 0 {
					_ = h.Quantile(99)
					_ = h.Render("ms", 20)
				}
				_ = tr.SlowOps()
				_, _ = tr.Counts()
			}
		}()
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	s := r.Snapshot()
	if got := s.Counters["stress.total"]; got != writers*perG {
		t.Fatalf("total = %d, want %d", got, writers*perG)
	}
	for w := 0; w < writers; w++ {
		if got := s.Counters[fmt.Sprintf("stress.w%d", w)]; got != perG {
			t.Fatalf("w%d = %d, want %d", w, got, perG)
		}
	}
	if got := s.Gauges["stress.depth"]; got != 0 {
		t.Fatalf("depth gauge = %d, want 0", got)
	}
	lat := s.Histograms["stress.lat"]
	if lat.Count != writers*perG {
		t.Fatalf("hist count = %d, want %d", lat.Count, writers*perG)
	}
	var bucketSum uint64
	for _, c := range lat.Counts {
		bucketSum += c
	}
	if bucketSum != lat.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, lat.Count)
	}
	total, slow := tr.Counts()
	if total != writers*perG || slow != writers*perG {
		t.Fatalf("tracer counts = %d/%d, want %d", total, slow, writers*perG)
	}
}
