// Package obs is the live observability layer: a dependency-free metrics
// registry (atomic counters, gauges, and log-bucketed latency histograms)
// plus lightweight operation tracing with a bounded slow-op log. The
// serving and workflow hot paths (datastore, queryengine, restapi,
// fireworks) record into a Registry so a running mpserve/mpworker can
// expose, live, the quantities the paper only reports offline: Fig. 5's
// query-latency histogram and the weekly "3315 distinct queries returning
// 12,951,099 records" accounting.
//
// Everything is safe under concurrent writers, and every method is
// nil-receiver-safe so instrumented code can hold a nil *Registry or
// *Tracer and pay (almost) nothing when observability is off.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"matproj/internal/stats"
)

// Fig. 5 bucket layout: latency histograms default to the exact bounds
// the offline reproduction uses (internal/experiments.Fig5), so the text
// rendering of a live /metrics histogram is shape-comparable with the
// offline figure.
const (
	LatencyMinMs    = 0.001
	LatencyMaxMs    = 1000
	LatencyBuckets  = 12
	defaultHistCap  = 64
	defaultSlowRing = 256
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value (queue depth, open handles).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram buckets float64 observations logarithmically between Min and
// Max (values outside clamp to the edge buckets), like stats.Histogram
// but safe for concurrent writers: buckets, count, and sum are atomics.
type Histogram struct {
	min, max float64
	logMin   float64
	logSpan  float64
	buckets  []atomic.Uint64
	count    atomic.Uint64
	sumBits  atomic.Uint64 // float64 bits, updated by CAS
	maxBits  atomic.Uint64 // float64 bits of the largest observation
}

func newHistogram(min, max float64, buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	if min <= 0 {
		min = 1e-9
	}
	if max <= min {
		max = min * 10
	}
	return &Histogram{
		min:     min,
		max:     max,
		logMin:  math.Log(min),
		logSpan: math.Log(max) - math.Log(min),
		buckets: make([]atomic.Uint64, buckets),
	}
}

func (h *Histogram) bucketOf(v float64) int {
	if v <= h.min {
		return 0
	}
	if v >= h.max {
		return len(h.buckets) - 1
	}
	idx := int((math.Log(v) - h.logMin) / h.logSpan * float64(len(h.buckets)))
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	return idx
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[h.bucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v && old != 0 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Snapshot captures a consistent-enough view of the histogram. Bucket
// counts are read individually, so a snapshot taken during writes may be
// off by in-flight observations — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Min:    h.min,
		Max:    h.max,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Peak:   math.Float64frombits(h.maxBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, serializable
// to JSON and renderable as the Fig. 5-style text histogram.
type HistogramSnapshot struct {
	Min    float64  `json:"min"`
	Max    float64  `json:"max"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    float64  `json:"sum"`
	Peak   float64  `json:"peak"`
}

// Mean returns the arithmetic mean of observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// toStats converts the snapshot into the offline stats.Histogram form so
// rendering and bucket-quantile estimation are shared with the Fig. 5
// reproduction code.
func (s HistogramSnapshot) toStats() *stats.Histogram {
	counts := make([]int, len(s.Counts))
	for i, c := range s.Counts {
		counts[i] = int(c)
	}
	return &stats.Histogram{Min: s.Min, Max: s.Max, Counts: counts}
}

// Quantile estimates the p-th percentile (0-100) from bucket counts.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if len(s.Counts) == 0 {
		return 0
	}
	return s.toStats().CountQuantile(p)
}

// Render draws the snapshot as an ASCII histogram in the Fig. 5 style.
func (s HistogramSnapshot) Render(unit string, width int) string {
	if len(s.Counts) == 0 {
		return ""
	}
	return s.toStats().Render(unit, width)
}

// Registry is a named collection of counters, gauges, and histograms.
// Metric lookup is get-or-create; all instruments are safe for
// concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	start    time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		start:    time.Now(),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, for binaries that do not
// construct their own.
func Default() *Registry { return defaultRegistry }

// Counter returns (creating if needed) the named counter. Nil registry
// returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given bucket layout. The layout of an existing histogram wins.
func (r *Registry) Histogram(name string, min, max float64, buckets int) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = newHistogram(min, max, buckets)
	r.hists[name] = h
	return h
}

// LatencyHistogram returns the named histogram with the Fig. 5 bucket
// layout (0.001–1000 ms, 12 log buckets).
func (r *Registry) LatencyHistogram(name string) *Histogram {
	return r.Histogram(name, LatencyMinMs, LatencyMaxMs, LatencyBuckets)
}

// Uptime reports how long ago the registry was created.
func (r *Registry) Uptime() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	At            time.Time                    `json:"at"`
	UptimeSeconds float64                      `json:"uptime_s"`
	Counters      map[string]uint64            `json:"counters"`
	Gauges        map[string]int64             `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric. Safe to call while writers are active.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		At:         time.Now(),
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	s.UptimeSeconds = time.Since(r.start).Seconds()
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot for terminals: counters and gauges
// sorted by name, then each histogram in the Fig. 5 text format.
func (s Snapshot) WriteText(w io.Writer) {
	fmt.Fprintf(w, "uptime: %.1fs\n", s.UptimeSeconds)
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "counter %-44s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "gauge   %-44s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(w, "histogram %s: n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f peak=%.3f\n",
			n, h.Count, h.Mean(), h.Quantile(50), h.Quantile(90), h.Quantile(99), h.Peak)
		fmt.Fprint(w, h.Render("ms", 48))
	}
}
