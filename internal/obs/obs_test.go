package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := r.Counter("x").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := r.Gauge("depth").Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.LatencyHistogram("lat")
	for i := 0; i < 1000; i++ {
		h.Observe(0.5) // mid-range value
	}
	h.Observe(900) // one slow outlier
	s := h.Snapshot()
	if s.Count != 1001 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Peak != 900 {
		t.Fatalf("peak = %v", s.Peak)
	}
	if m := s.Mean(); m < 0.5 || m > 2 {
		t.Fatalf("mean = %v", m)
	}
	p50 := s.Quantile(50)
	if p50 < 0.05 || p50 > 5 {
		t.Fatalf("p50 = %v out of expected band", p50)
	}
	if p999 := s.Quantile(99.95); p999 < 100 {
		t.Fatalf("p99.95 = %v, want near the outlier bucket", p999)
	}
}

func TestHistogramRenderSharesFig5Shape(t *testing.T) {
	r := NewRegistry()
	h := r.LatencyHistogram("lat")
	for i := 0; i < 64; i++ {
		h.Observe(1.0)
	}
	out := h.Snapshot().Render("ms", 48)
	if !strings.Contains(out, "ms |") || !strings.Contains(out, "#") {
		t.Fatalf("render missing histogram furniture:\n%s", out)
	}
	// 12 rows, one per Fig. 5 bucket.
	if rows := strings.Count(out, "\n"); rows != LatencyBuckets {
		t.Fatalf("rows = %d, want %d", rows, LatencyBuckets)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(-1)
	r.LatencyHistogram("c").Observe(2)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 3 || back.Gauges["b"] != -1 || back.Histograms["c"].Count != 1 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	var text bytes.Buffer
	back.WriteText(&text)
	if !strings.Contains(text.String(), "counter a") {
		t.Fatalf("text render missing counter:\n%s", text.String())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.LatencyHistogram("z").Observe(1)
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var tr *Tracer
	tr.Observe("op", "", time.Second)
	tr.ObserveFunc("op", time.Second, func() string { return "d" })
	sp := tr.Start("op")
	sp.Finish()
	if got := tr.SlowOps(); got != nil {
		t.Fatal("nil tracer returned slow ops")
	}
}

func TestTracerSlowLog(t *testing.T) {
	tr := NewTracer(10*time.Millisecond, 4)
	tr.Observe("fast", "", time.Millisecond)
	for i := 0; i < 6; i++ {
		tr.Observe("slow", "q", 20*time.Millisecond)
	}
	total, slow := tr.Counts()
	if total != 7 || slow != 6 {
		t.Fatalf("counts = %d/%d", total, slow)
	}
	ops := tr.SlowOps()
	if len(ops) != 4 { // bounded ring
		t.Fatalf("ring length = %d, want 4", len(ops))
	}
	for _, op := range ops {
		if op.Op != "slow" || op.DurationMs < 19 {
			t.Fatalf("bad entry %+v", op)
		}
	}
	// Lazy detail must not run for fast ops.
	ran := false
	tr.ObserveFunc("fast", time.Millisecond, func() string { ran = true; return "" })
	if ran {
		t.Fatal("detail built for fast op")
	}
	tr.ObserveFunc("slow", time.Second, func() string { ran = true; return "lazy" })
	if !ran {
		t.Fatal("detail not built for slow op")
	}
	got := tr.SlowOps()
	if got[len(got)-1].Detail != "lazy" {
		t.Fatalf("lazy detail missing: %+v", got[len(got)-1])
	}
}

func TestTracerThresholdRuntimeChange(t *testing.T) {
	tr := NewTracer(time.Hour, 8)
	tr.Observe("op", "", time.Second)
	if _, slow := tr.Counts(); slow != 0 {
		t.Fatal("op logged below threshold")
	}
	tr.SetThreshold(time.Millisecond)
	if tr.Threshold() != time.Millisecond {
		t.Fatal("threshold not updated")
	}
	tr.Observe("op", "", time.Second)
	if _, slow := tr.Counts(); slow != 1 {
		t.Fatal("op not logged after threshold drop")
	}
}
