package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records per-operation spans and keeps a bounded ring of the
// slow ones: any finished span whose duration meets the threshold lands
// in the slow-op log with its detail string (the slow-query log). All
// methods are nil-receiver-safe and safe for concurrent use.
type Tracer struct {
	thresholdNs atomic.Int64
	total       atomic.Uint64
	slow        atomic.Uint64

	mu     sync.Mutex
	ring   []SlowOp
	next   int
	filled bool
}

// SlowOp is one logged slow operation.
type SlowOp struct {
	Op         string    `json:"op"`
	Detail     string    `json:"detail,omitempty"`
	DurationMs float64   `json:"duration_ms"`
	At         time.Time `json:"at"`
}

// NewTracer returns a tracer logging operations at or above threshold,
// retaining the most recent capacity slow ops (default 256 when <= 0).
func NewTracer(threshold time.Duration, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultSlowRing
	}
	t := &Tracer{ring: make([]SlowOp, capacity)}
	t.thresholdNs.Store(int64(threshold))
	return t
}

// SetThreshold changes the slow-op threshold at runtime.
func (t *Tracer) SetThreshold(d time.Duration) {
	if t != nil {
		t.thresholdNs.Store(int64(d))
	}
}

// Threshold reports the current slow-op threshold.
func (t *Tracer) Threshold() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.thresholdNs.Load())
}

// Span is one in-flight traced operation.
type Span struct {
	t      *Tracer
	op     string
	detail string
	start  time.Time
}

// Start opens a span for op. Finish (or FinishDetail) closes it.
func (t *Tracer) Start(op string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, op: op, start: time.Now()}
}

// SetDetail attaches the detail string logged if the span turns out slow.
func (sp *Span) SetDetail(detail string) {
	sp.detail = detail
}

// Finish closes the span, logging it when slow, and returns its duration.
func (sp Span) Finish() time.Duration {
	if sp.t == nil {
		return 0
	}
	d := time.Since(sp.start)
	sp.t.record(sp.op, sp.detail, d, sp.start)
	return d
}

// Observe records an already-measured operation.
func (t *Tracer) Observe(op, detail string, d time.Duration) {
	if t == nil {
		return
	}
	t.record(op, detail, d, time.Now().Add(-d))
}

// ObserveFunc is Observe with a lazily built detail string: detail() runs
// only when the operation is slow enough to be logged, keeping the fast
// path free of formatting work.
func (t *Tracer) ObserveFunc(op string, d time.Duration, detail func() string) {
	if t == nil {
		return
	}
	t.total.Add(1)
	if int64(d) < t.thresholdNs.Load() {
		return
	}
	t.logSlow(op, detail(), d, time.Now().Add(-d))
}

func (t *Tracer) record(op, detail string, d time.Duration, start time.Time) {
	t.total.Add(1)
	if int64(d) < t.thresholdNs.Load() {
		return
	}
	t.logSlow(op, detail, d, start)
}

func (t *Tracer) logSlow(op, detail string, d time.Duration, start time.Time) {
	t.slow.Add(1)
	entry := SlowOp{Op: op, Detail: detail, DurationMs: float64(d) / float64(time.Millisecond), At: start}
	t.mu.Lock()
	t.ring[t.next] = entry
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.mu.Unlock()
}

// SlowOps returns the retained slow operations, oldest first.
func (t *Tracer) SlowOps() []SlowOp {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.filled {
		out := make([]SlowOp, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]SlowOp, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Counts reports how many operations were traced and how many crossed
// the slow threshold.
func (t *Tracer) Counts() (total, slow uint64) {
	if t == nil {
		return 0, 0
	}
	return t.total.Load(), t.slow.Load()
}
