.PHONY: check test vet build bench

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Full gate: vet + build + race-enabled tests.
check:
	./scripts/check.sh

bench:
	go test -bench . -benchtime 1x -run '^$$' .
