.PHONY: check test vet build bench fuzz lint

build:
	go build ./...

vet:
	go vet ./...

# lint runs go vet plus mplint, the repo-native analyzer suite
# (internal/analysis/lint). mplint exits 0 when clean, 1 on findings,
# 2 on a load/type error, so a failing target always means something
# actionable.
lint:
	go vet ./...
	go run ./cmd/mplint ./...

test:
	go test ./...

# Full gate: vet + mplint + build + race-enabled tests + stress pass +
# fuzz smoke.
check:
	./scripts/check.sh

# bench runs the Go benchmarks once each, then the instrumented
# deployment benchmark (BENCH_core.json + BENCH_obs.json) and the
# result-cache benchmark (BENCH_cache.json: hot-read speedup and
# miss-path overhead).
bench:
	go test -bench . -benchtime 1x -run '^$$' .
	go run ./cmd/mpbench -exp bench -scale small
	go run ./cmd/mpbench -exp cache -scale small

# fuzz runs each fuzz target for longer than the check-gate smoke.
fuzz:
	go test ./internal/query/ -run '^$$' -fuzz '^FuzzFilterCompileMatch$$' -fuzztime 60s
	go test ./internal/query/ -run '^$$' -fuzz '^FuzzUpdateApply$$' -fuzztime 60s
	go test ./internal/document/ -run '^$$' -fuzz '^FuzzDocumentPath$$' -fuzztime 60s
