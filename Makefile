.PHONY: check test vet build bench fuzz

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Full gate: vet + build + race-enabled tests + fuzz smoke.
check:
	./scripts/check.sh

# bench runs the Go benchmarks once each, then the instrumented
# deployment benchmark, which writes BENCH_core.json (timed loops) and
# BENCH_obs.json (the live metrics registry after the same traffic).
bench:
	go test -bench . -benchtime 1x -run '^$$' .
	go run ./cmd/mpbench -exp bench -scale small

# fuzz runs each fuzz target for longer than the check-gate smoke.
fuzz:
	go test ./internal/query/ -run '^$$' -fuzz '^FuzzFilterCompileMatch$$' -fuzztime 60s
	go test ./internal/query/ -run '^$$' -fuzz '^FuzzUpdateApply$$' -fuzztime 60s
	go test ./internal/document/ -run '^$$' -fuzz '^FuzzDocumentPath$$' -fuzztime 60s
