#!/usr/bin/env sh
# Repository gate: vet + mplint, build, the full test suite under the
# race detector, a concurrency stress pass, and a short fuzz smoke over
# each fuzz target (seed corpus plus a few seconds of mutation — enough
# to catch regressions in the filter/update/path invariants without
# turning CI into a fuzz farm).
set -eu
cd "$(dirname "$0")/.."

# Static analysis gate. mplint (cmd/mplint) enforces the repo's
# concurrency/determinism/durability invariants; its exit-code contract:
#   0 — clean; the gate proceeds
#   1 — findings; set -e stops the gate right here (fix the code or add
#       a //lint:ignore <analyzer> <reason> with a real justification)
#   2 — load/type error; the tree does not even type-check
go vet ./...
mplint_bin="${TMPDIR:-/tmp}/mplint.$$"
go build -o "$mplint_bin" ./cmd/mplint
trap 'rm -f "$mplint_bin"' EXIT

# Registration smoke: every analyzer the suite is supposed to carry must
# be selectable, or a refactor that drops one silently weakens the gate.
mplint_list="$("$mplint_bin" -list)"
for a in clockdiscipline seededrand fsyncerr docaliasing lockheld wrapcheck \
         lockorder goroleak gendiscipline atomicmix; do
    case "$mplint_list" in
    *"$a"*) ;;
    *) echo "check.sh: analyzer $a missing from mplint -list" >&2; exit 1 ;;
    esac
done

# Timing budget: the whole-module run (interprocedural fact base
# included) must stay under 60s, so the suite remains cheap enough to
# gate every commit.
lint_start=$(date +%s)
"$mplint_bin" ./...
lint_elapsed=$(( $(date +%s) - lint_start ))
if [ "$lint_elapsed" -gt 60 ]; then
    echo "check.sh: mplint took ${lint_elapsed}s, budget is 60s" >&2
    exit 1
fi
echo "mplint clean in ${lint_elapsed}s (budget 60s)"
go build ./...
go test -race ./...

# Stress pass: the lock-ordering and lease/failover machinery is where
# interleaving bugs hide; run those suites twice under the race
# detector so flaky schedules get a second chance to trip it. rcache and
# queryengine ride along for the cache freshness invariant (no stale
# read after an acknowledged write, writers racing readers).
echo "stress pass (-race -count=2: cluster, fireworks, rcache, queryengine)..."
go test -race -count=2 ./internal/cluster/ ./internal/fireworks/ ./internal/rcache/ ./internal/queryengine/

# Planner correctness oracle: >=1200 seeded corpus/query pairs where the
# planner-chosen execution must match a naive scan-then-sort twin
# exactly (ids, order, projections, counts). Runs under -race because
# readers rebuilding the lazy sorted key list share the collection read
# lock. Zero violations is the gate.
echo "scan-vs-index oracle (-race)..."
go test -race -count=1 -run '^TestOracle' ./internal/datastore/

FUZZTIME="${FUZZTIME:-5s}"
echo "fuzz smoke (${FUZZTIME} per target)..."
go test ./internal/query/ -run '^$' -fuzz '^FuzzFilterCompileMatch$' -fuzztime "$FUZZTIME"
go test ./internal/query/ -run '^$' -fuzz '^FuzzUpdateApply$' -fuzztime "$FUZZTIME"
go test ./internal/document/ -run '^$' -fuzz '^FuzzDocumentPath$' -fuzztime "$FUZZTIME"
go test ./internal/datastore/ -run '^$' -fuzz '^FuzzKeyEncodingOrder$' -fuzztime "$FUZZTIME"

# Cluster e2e smoke: two real shard-node processes, a router process that
# loads the corpus over the wire, and a routed query through the public
# API — the networked analogue of the in-process tests.
echo "cluster e2e smoke..."
TMP=$(mktemp -d)
go build -o "$TMP/mpserve" ./cmd/mpserve
"$TMP/mpserve" -role node -addr 127.0.0.1:19801 >"$TMP/n1.log" 2>&1 &
N1=$!
"$TMP/mpserve" -role node -addr 127.0.0.1:19802 >"$TMP/n2.log" 2>&1 &
N2=$!
"$TMP/mpserve" -role router -addr 127.0.0.1:19800 -shards 2 -materials 20 \
    -ordered-index materials:band_gap \
    -peers http://127.0.0.1:19801,http://127.0.0.1:19802 >"$TMP/r.log" 2>&1 &
R=$!
trap 'kill $N1 $N2 $R ${S:-} ${F1:-} ${F2:-} ${F3:-} ${F4:-} ${F3B:-} ${FR:-} 2>/dev/null || true; rm -rf "$TMP"' EXIT
for _ in $(seq 1 30); do
    curl -fsS -o /dev/null http://127.0.0.1:19800/status 2>/dev/null && break
    sleep 1
done
KEY=$(curl -fsS -X POST 'http://127.0.0.1:19800/auth/signup?provider=google&email=check@example.com' \
    | jq -r '.response[0].api_key')
curl -fsS -X POST -H "X-API-KEY: $KEY" -H 'Content-Type: application/json' \
    -d '{"criteria":{},"properties":["pretty_formula","final_energy"],"limit":5}' \
    http://127.0.0.1:19800/rest/v1/query \
    | jq -e '.valid_response == true and (.response | length > 0)' >/dev/null \
    || { echo "check: routed query failed"; tail "$TMP/r.log"; exit 1; }
curl -fsS http://127.0.0.1:19800/metrics | grep -q 'cluster_scatter_total' \
    || { echo "check: router metrics missing cluster counters"; exit 1; }
# Routed $explain: the REST explain flag must come back as the merged
# per-shard plan document, and with -ordered-index materials:band_gap
# above, a band_gap range query must plan as an index read on every
# shard (merged mode "index", not "mixed" or "scan").
curl -fsS -X POST -H "X-API-KEY: $KEY" -H 'Content-Type: application/json' \
    -d '{"criteria":{"band_gap":{"$gte":1.0,"$lt":3.0}},"explain":true}' \
    http://127.0.0.1:19800/rest/v1/query \
    | jq -e '.valid_response == true and .response[0].sharded == true and .response[0].mode == "index"' >/dev/null \
    || { echo "check: routed \$explain did not report an index plan"; tail "$TMP/r.log"; exit 1; }
echo "cluster smoke: routed query + metrics + \$explain OK"

# Ingest e2e smoke: batched writes through the same running router. A
# 3-doc insertMany must come back as 3 rows with ids; a mixed bulkWrite
# with an intentional duplicate insert must report the failure on that
# op alone (per-doc error reporting) while the ops around it apply; and
# an oversized body must be refused with 413.
echo "ingest e2e smoke..."
curl -fsS -X POST -H "X-API-KEY: $KEY" -H 'Content-Type: application/json' \
    -d '{"docs":[{"_id":"ing-a","pretty_formula":"TiO2","final_energy":-9.0},{"_id":"ing-b","pretty_formula":"MgO","final_energy":-5.5},{"pretty_formula":"ZnS","final_energy":-4.1}]}' \
    http://127.0.0.1:19800/rest/v1/insertMany \
    | jq -e '.valid_response == true and (.response | length == 3) and all(.response[]; ._id != null and ._id != "")' >/dev/null \
    || { echo "check: routed insertMany failed"; tail "$TMP/r.log"; exit 1; }
curl -fsS -X POST -H "X-API-KEY: $KEY" -H 'Content-Type: application/json' \
    -d '{"ops":[{"op":"insert","doc":{"_id":"ing-1","pretty_formula":"CaO"}},{"op":"insert","doc":{"_id":"ing-1","pretty_formula":"CaO"}},{"op":"updateMany","filter":{"_id":"ing-a"},"update":{"$set":{"band_gap":7.0}}},{"op":"delete","filter":{"_id":"ing-b"}}]}' \
    http://127.0.0.1:19800/rest/v1/bulkWrite \
    | jq -e '.valid_response == true and (.response | length == 4)
        and .response[0].id == "ing-1" and (.response[0] | has("error") | not)
        and (.response[1].error != null and .response[1].error != "")
        and .response[2].matched == 1 and .response[2].modified == 1
        and .response[3].removed == 1' >/dev/null \
    || { echo "check: routed bulkWrite per-op results wrong"; tail "$TMP/r.log"; exit 1; }
# The body must be syntactically valid JSON up to the cap so the
# decoder streams into the limiter instead of failing on byte one.
CODE=$({ printf '{"criteria":{"pretty_formula":"'; head -c 9000000 /dev/zero | tr '\0' 'x'; printf '"}}'; } \
    | curl -s -o /dev/null -w '%{http_code}' -X POST -H "X-API-KEY: $KEY" \
          -H 'Content-Type: application/json' --data-binary @- \
          http://127.0.0.1:19800/rest/v1/query)
[ "$CODE" = "413" ] \
    || { echo "check: oversized body returned $CODE, want 413"; exit 1; }
echo "ingest smoke: insertMany + bulkWrite per-doc errors + 413 body cap OK"

# Result-cache e2e smoke: a standalone server, the same GET twice (the
# second must be a cache hit per /metrics), then a conditional GET with
# the response's ETag (must come back 304 Not Modified).
echo "cache e2e smoke..."
"$TMP/mpserve" -addr 127.0.0.1:19810 -materials 20 >"$TMP/s.log" 2>&1 &
S=$!
for _ in $(seq 1 30); do
    curl -fsS -o /dev/null http://127.0.0.1:19810/status 2>/dev/null && break
    sleep 1
done
KEY=$(curl -fsS -X POST 'http://127.0.0.1:19810/auth/signup?provider=google&email=cache@example.com' \
    | jq -r '.response[0].api_key')
F=$(curl -fsS -X POST -H "X-API-KEY: $KEY" -H 'Content-Type: application/json' \
    -d '{"criteria":{},"properties":["pretty_formula"],"limit":1}' \
    http://127.0.0.1:19810/rest/v1/query | jq -r '.response[0].pretty_formula')
curl -fsS -H "X-API-KEY: $KEY" -o /dev/null "http://127.0.0.1:19810/rest/v1/materials/$F/vasp"
ETAG=$(curl -fsS -H "X-API-KEY: $KEY" -o /dev/null -D - "http://127.0.0.1:19810/rest/v1/materials/$F/vasp" \
    | awk 'tolower($1)=="etag:" {print $2}' | tr -d '\r')
curl -fsS http://127.0.0.1:19810/metrics \
    | jq -e '.counters["rcache.hits"] >= 1' >/dev/null \
    || { echo "check: repeated GET was not a cache hit"; tail "$TMP/s.log"; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H "X-API-KEY: $KEY" -H "If-None-Match: $ETAG" \
    "http://127.0.0.1:19810/rest/v1/materials/$F/vasp")
[ "$CODE" = "304" ] \
    || { echo "check: conditional GET returned $CODE, want 304"; exit 1; }
echo "cache smoke: hit + 304 OK"

# Failover e2e smoke (SLO-gated): a 2-shard × 2-member cluster of real
# processes with durable node stores takes a fixed-rate open-loop
# webload with bounded-staleness follower reads while one replica is
# killed (-9) and restarted mid-run. The gate fails if the p99 exceeds
# its budget, any probe read observes data older than its staleness
# bound (mpbench -exp webload exits nonzero on either), or the router
# re-admitted the replica without shipping log entries — i.e. anything
# but incremental catch-up.
echo "failover e2e smoke..."
go build -o "$TMP/mpbench" ./cmd/mpbench
"$TMP/mpserve" -role node -addr 127.0.0.1:19821 -data "$TMP/d1" >"$TMP/f1.log" 2>&1 &
F1=$!
"$TMP/mpserve" -role node -addr 127.0.0.1:19822 -data "$TMP/d2" >"$TMP/f2.log" 2>&1 &
F2=$!
"$TMP/mpserve" -role node -addr 127.0.0.1:19823 -data "$TMP/d3" >"$TMP/f3.log" 2>&1 &
F3=$!
"$TMP/mpserve" -role node -addr 127.0.0.1:19824 -data "$TMP/d4" >"$TMP/f4.log" 2>&1 &
F4=$!
# Round-robin assignment: group 0 = {19821, 19823}, group 1 = {19822, 19824}.
"$TMP/mpserve" -role router -addr 127.0.0.1:19820 -shards 2 -materials 30 \
    -health-interval 300ms \
    -peers http://127.0.0.1:19821,http://127.0.0.1:19822,http://127.0.0.1:19823,http://127.0.0.1:19824 \
    >"$TMP/fr.log" 2>&1 &
FR=$!
for _ in $(seq 1 30); do
    curl -fsS -o /dev/null http://127.0.0.1:19820/status 2>/dev/null && break
    sleep 1
done
"$TMP/mpbench" -exp webload -url http://127.0.0.1:19820 \
    -rate 60 -load-duration 8s -max-staleness 4 -probe-groups 2 -slo-p99-ms 500 \
    -webload-out "$TMP/BENCH_webload.json" >"$TMP/webload.log" 2>&1 &
W=$!
sleep 2
# Kill group 0's replica outright mid-load...
kill -9 $F3 2>/dev/null || true
sleep 2
# ...and bring it back on the same port with the same durable store: it
# replays its journal, then the router must catch it up from the log.
"$TMP/mpserve" -role node -addr 127.0.0.1:19823 -data "$TMP/d3" >"$TMP/f3b.log" 2>&1 &
F3B=$!
wait $W \
    || { echo "check: webload SLO/staleness gate failed"; cat "$TMP/webload.log"; exit 1; }
cat "$TMP/webload.log"
curl -fsS http://127.0.0.1:19820/metrics \
    | jq -e '.counters["cluster.repl_readmissions"] >= 1 and .counters["cluster.repl_catchup_entries"] >= 1' >/dev/null \
    || { echo "check: replica was not re-admitted via log catch-up"; curl -fsS http://127.0.0.1:19820/metrics | jq '.counters'; exit 1; }
echo "failover smoke: SLO held through kill + log-catch-up re-admission OK"

# The in-process chaos variant writes the BENCH_failover.json artifact
# and enforces the same gates without process orchestration.
"$TMP/mpbench" -exp failover -rate 100 -load-duration 3s \
    -failover-out BENCH_failover.json \
    || { echo "check: in-process failover gate failed"; exit 1; }

# Group-commit ingest gate: batched durable writes must sustain at least
# 5x the sequential fsync-per-document throughput (artifact:
# BENCH_ingest.json).
"$TMP/mpbench" -exp ingest -ingest-out BENCH_ingest.json \
    || { echo "check: ingest throughput gate failed"; exit 1; }
echo "check: all green"
