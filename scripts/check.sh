#!/usr/bin/env sh
# Repository gate: vet, build, the full test suite under the race
# detector, and a short fuzz smoke over each fuzz target (seed corpus
# plus a few seconds of mutation — enough to catch regressions in the
# filter/update/path invariants without turning CI into a fuzz farm).
set -eu
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race ./...

FUZZTIME="${FUZZTIME:-5s}"
echo "fuzz smoke (${FUZZTIME} per target)..."
go test ./internal/query/ -run '^$' -fuzz '^FuzzFilterCompileMatch$' -fuzztime "$FUZZTIME"
go test ./internal/query/ -run '^$' -fuzz '^FuzzUpdateApply$' -fuzztime "$FUZZTIME"
go test ./internal/document/ -run '^$' -fuzz '^FuzzDocumentPath$' -fuzztime "$FUZZTIME"
echo "check: all green"
