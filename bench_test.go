// Package matproj's root benchmarks regenerate every table and figure of
// the paper (run `go test -bench=. -benchmem`) and time the ablations
// DESIGN.md calls out. Human-readable renderings of the same experiments
// come from `go run ./cmd/mpbench`.
package matproj

import (
	"fmt"
	"testing"
	"time"

	"matproj/internal/datastore"
	"matproj/internal/dfs"
	"matproj/internal/dft"
	"matproj/internal/document"
	"matproj/internal/experiments"
	"matproj/internal/fireworks"
	"matproj/internal/icsd"
	"matproj/internal/mapreduce"
	"matproj/internal/obs"
	"matproj/internal/queryengine"
	"matproj/internal/shard"
)

// benchScale keeps per-iteration work small enough for stable timing.
var benchScale = experiments.Small

// --- one benchmark per paper artifact --------------------------------------

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkFig1Battery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Candidates)), "candidates")
	}
}

func BenchmarkFig2FourRoles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.WebQueries), "queries")
	}
}

func BenchmarkFig3Lifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		steps, err := experiments.Fig3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(steps) != 6 {
			b.Fatal("incomplete lifecycle")
		}
	}
}

func BenchmarkFig4API(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if r.Status != 200 {
			b.Fatalf("status %d", r.Status)
		}
	}
}

func BenchmarkFig5QueryLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Summary.P50*1000, "p50-µs")
		b.ReportMetric(r.Summary.P99*1000, "p99-µs")
	}
}

func BenchmarkWeekStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.WeekStats(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Records), "records")
	}
}

func BenchmarkFireworksFeatures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.FireworksFeatures(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Reruns), "reruns")
		b.ReportMetric(float64(r.Duplicates), "dups")
	}
}

// --- §IV-B2: built-in vs parallel MapReduce --------------------------------

// mrFixture builds a tasks collection once per benchmark.
func mrFixture(b *testing.B, nDocs int) *datastore.Collection {
	b.Helper()
	store := datastore.MustOpenMemory()
	tasks := store.C("tasks")
	for i := 0; i < nDocs; i++ {
		_, err := tasks.Insert(document.D{
			"state":  "successful",
			"stage":  map[string]any{"structure_id": fmt.Sprintf("s%05d", i%(nDocs/8+1))},
			"result": map[string]any{"final_energy": -float64(i%37) - 1},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return tasks
}

func mrMapper(t document.D, emit func(string, any)) {
	e, _ := t.GetFloat("result.final_energy")
	emit(t.GetString("stage.structure_id"), e)
}

func mrReducer(_ string, vs []any) any {
	best, _ := document.AsFloat(vs[0])
	for _, v := range vs[1:] {
		if f, _ := document.AsFloat(v); f < best {
			best = f
		}
	}
	return best
}

func BenchmarkMapReduceBuiltin(b *testing.B) {
	tasks := mrFixture(b, benchScale.MRDocs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tasks.MapReduce(nil, mrMapper, mrReducer); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapReduceParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tasks := mrFixture(b, benchScale.MRDocs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mapreduce.RunCollection(tasks, nil, mrMapper, mrReducer,
					mapreduce.Config{MapWorkers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §IV-A1: task farming ----------------------------------------------

func BenchmarkTaskFarming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TaskFarm(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Jobs), "farm-jobs")
		b.ReportMetric(float64(rows[1].Jobs), "single-jobs")
	}
}

// --- ablation 1: index vs full scan on the paper's example query -----------

// queryFixture seeds a collection for the §III-B2 job-selection query.
func queryFixture(b *testing.B, n int, indexed bool) *datastore.Collection {
	b.Helper()
	store := datastore.MustOpenMemory()
	queryFixtureStores[store.C("engines")] = store
	c := store.C("engines")
	combos := [][]any{
		{"Li", "O"}, {"Li", "Fe", "O"}, {"Na", "O"}, {"Fe", "O"}, {"Mg", "Si", "O"},
		{"Ca", "Ti", "O"}, {"K", "Cl"}, {"Na", "Cl"}, {"Zn", "S"}, {"Al", "O"},
		{"Cu", "O"}, {"Ni", "S"},
	}
	for i := 0; i < n; i++ {
		_, err := c.Insert(document.D{
			"elements":   combos[i%len(combos)],
			"nelectrons": int64(30 + i%400),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if indexed {
		c.EnsureIndex("elements")
		c.EnsureIndex("nelectrons")
	}
	return c
}

// queryFixtureStores lets benchmarks recover the store behind a fixture
// collection (for wiring a QueryEngine over the same data).
var queryFixtureStores = map[*datastore.Collection]*datastore.Store{}

func storeOf(c *datastore.Collection) *datastore.Store { return queryFixtureStores[c] }

var paperQuery = document.MustFromJSON(`{"elements": {"$all": ["Li", "O"]}, "nelectrons": {"$lte": 200}}`)

func BenchmarkPaperQueryFullScan(b *testing.B) {
	c := queryFixture(b, 20000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FindAll(paperQuery, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaperQueryIndexed(b *testing.B) {
	c := queryFixture(b, 20000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FindAll(paperQuery, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation 2: duplicate detection on vs off -----------------------------

// dedupRun executes a duplicate-heavy workload and reports the virtual
// CPU-hours consumed.
func dedupRun(b *testing.B, useBinder bool) float64 {
	b.Helper()
	store := datastore.MustOpenMemory()
	pad := fireworks.NewLaunchPad(store, 5)
	fireworks.RegisterVASP(pad)
	mps := store.C("mps")
	var fws []fireworks.Firework
	for _, r := range icsd.Generate(icsd.Config{Seed: 5, DuplicateRate: 0.4}, 40) {
		mdoc := r.ToDoc()
		if _, err := mps.Insert(mdoc); err != nil {
			b.Fatal(err)
		}
		fw := fireworks.NewVASPFirework(mdoc, "relax", dft.DefaultParams(), 24*time.Hour)
		if !useBinder {
			fw.Binder = nil
		}
		fws = append(fws, fw)
	}
	if _, err := pad.AddWorkflow(fws); err != nil {
		b.Fatal(err)
	}
	r := &fireworks.Rocket{Pad: pad, Assembler: fireworks.NewVASPAssembler(store), WorkerID: "w"}
	if _, err := r.RunLocal(0); err != nil {
		b.Fatal(err)
	}
	tasks, err := store.C("tasks").FindAll(nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	var cpuSeconds float64
	for _, t := range tasks {
		rt, _ := t.GetFloat("runtime_s")
		cpuSeconds += rt
	}
	return cpuSeconds / 3600
}

func BenchmarkDedupBinderOn(b *testing.B) {
	var hours float64
	for i := 0; i < b.N; i++ {
		hours = dedupRun(b, true)
	}
	b.ReportMetric(hours, "virtual-cpu-h")
}

func BenchmarkDedupBinderOff(b *testing.B) {
	var hours float64
	for i := 0; i < b.N; i++ {
		hours = dedupRun(b, false)
	}
	b.ReportMetric(hours, "virtual-cpu-h")
}

// --- ablation 5: QueryEngine layer overhead --------------------------------

func BenchmarkRawCollectionFind(b *testing.B) {
	c := queryFixture(b, 5000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FindAll(paperQuery, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryEngineFind(b *testing.B) {
	// Same data distribution as BenchmarkRawCollectionFind so the two
	// numbers isolate the alias/sanitize layer's cost.
	c := queryFixture(b, 5000, true)
	eng := queryengine.New(storeOf(c))
	eng.AddAlias("engines", "els", "elements")
	aliased := document.MustFromJSON(`{"els": {"$all": ["Li", "O"]}, "nelectrons": {"$lte": 200}}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Find("bench", "engines", aliased, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks on the hot paths --------------------------------------

func BenchmarkInsert(b *testing.B) {
	c := datastore.MustOpenMemory().C("x")
	doc := document.MustFromJSON(`{"formula": "LiFePO4", "elements": ["Li","Fe","P","O"], "output": {"final_energy": -12.1}}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Insert(doc.Copy()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindAndModifyClaim(b *testing.B) {
	// Constant queue depth: each iteration claims one job and enqueues a
	// replacement, so the per-claim cost reflects a steady-state queue.
	const depth = 1000
	c := datastore.MustOpenMemory().C("engines")
	for i := 0; i < depth; i++ {
		if _, err := c.Insert(document.D{"state": "ready", "priority": int64(i % 10)}); err != nil {
			b.Fatal(err)
		}
	}
	c.EnsureIndex("state")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FindAndModify(
			document.D{"state": "ready"},
			document.D{"$set": document.D{"state": "running"}},
			[]string{"-priority"}, true); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Insert(document.D{"state": "ready", "priority": int64(i % 10)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDFTRun(b *testing.B) {
	recs := icsd.Generate(icsd.Config{Seed: 8, DuplicateRate: 0}, 16)
	p := dft.DefaultParams()
	p.Potim = 0.2
	p.Algo = "Normal"
	p.NELM = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dft.Run(recs[i%len(recs)].Structure, p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §IV-B2 continued: pre-staging to the DFS -------------------------------

func BenchmarkMapReduceStaged(b *testing.B) {
	store := datastore.MustOpenMemory()
	tasks := store.C("tasks")
	for i := 0; i < benchScale.MRDocs; i++ {
		if _, err := tasks.Insert(document.D{
			"state":  "successful",
			"stage":  map[string]any{"structure_id": fmt.Sprintf("s%05d", i%(benchScale.MRDocs/8+1))},
			"result": map[string]any{"final_energy": -float64(i%37) - 1},
		}); err != nil {
			b.Fatal(err)
		}
	}
	fs, err := dfs.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	set, err := fs.Stage(store, "tasks", nil, "bench", 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dfs.RunStaged(set, mrMapper, mrReducer, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §IV-D2: sharded scatter-gather ------------------------------------------

func BenchmarkShardedQuery(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cl, err := shard.NewCluster(shard.Options{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 8000; i++ {
				if _, err := cl.Insert("materials", document.D{
					"nelectrons": int64(30 + i%400),
					"formula":    fmt.Sprintf("F%d", i),
				}); err != nil {
					b.Fatal(err)
				}
			}
			filter := document.MustFromJSON(`{"nelectrons": {"$lte": 200}}`)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.FindAll("materials", filter, nil, shard.ReadPrimary); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- observability-era core benchmarks (mpbench -exp bench mirrors these) ---

// BenchmarkFind times the full dissemination read path — QueryEngine over
// an indexed collection — with the metrics layer off and on, so the
// instrumentation overhead is a number, not a guess.
func BenchmarkFind(b *testing.B) {
	for _, instrumented := range []bool{false, true} {
		b.Run(fmt.Sprintf("obs=%v", instrumented), func(b *testing.B) {
			c := queryFixture(b, 5000, true)
			store := storeOf(c)
			eng := queryengine.New(store)
			if instrumented {
				reg := obs.NewRegistry()
				store.Observe(reg, nil)
				eng.Observe(reg, nil)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Find("bench", "engines", paperQuery, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAggregate times the sanitized aggregation path end to end
// (QueryEngine stage whitelist + datastore pipeline executor).
func BenchmarkAggregate(b *testing.B) {
	store := datastore.MustOpenMemory()
	tasks := store.C("tasks")
	for i := 0; i < benchScale.MRDocs; i++ {
		if _, err := tasks.Insert(document.D{
			"state":  "successful",
			"stage":  map[string]any{"structure_id": fmt.Sprintf("s%05d", i%(benchScale.MRDocs/8+1))},
			"result": map[string]any{"final_energy": -float64(i%37) - 1},
		}); err != nil {
			b.Fatal(err)
		}
	}
	eng := queryengine.New(store)
	stages := []document.D{
		{"$group": document.MustFromJSON(`{"_id": "$stage.structure_id", "best": {"$min": "$result.final_energy"}}`)},
		{"$sort": document.MustFromJSON(`{"best": 1}`)},
		{"$limit": int64(10)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Aggregate("bench", "tasks", stages); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapReduceParallelVsBuiltin puts the §IV-B2 comparison in one
// benchmark: the same reduction on the same corpus, single-threaded
// builtin vs the Hadoop-style engine at increasing worker counts.
func BenchmarkMapReduceParallelVsBuiltin(b *testing.B) {
	b.Run("builtin", func(b *testing.B) {
		tasks := mrFixture(b, benchScale.MRDocs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tasks.MapReduce(nil, mrMapper, mrReducer); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			tasks := mrFixture(b, benchScale.MRDocs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mapreduce.RunCollection(tasks, nil, mrMapper, mrReducer,
					mapreduce.Config{MapWorkers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- aggregation pipeline -----------------------------------------------------

func BenchmarkAggregateGroup(b *testing.B) {
	tasks := mrFixture(b, benchScale.MRDocs)
	pipeline := []document.D{
		{"$group": document.MustFromJSON(`{"_id": "$stage.structure_id", "best": {"$min": "$result.final_energy"}}`)},
		{"$sort": document.MustFromJSON(`{"best": 1}`)},
		{"$limit": int64(10)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tasks.Aggregate(pipeline); err != nil {
			b.Fatal(err)
		}
	}
}
